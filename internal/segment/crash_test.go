package segment

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// crashAt returns a failpoint that simulates a crash at one named
// stage by failing it (the maintenance pass aborts, leaving the
// on-disk state exactly as a process death there would).
func crashAt(stage string) func(string) error {
	return func(got string) error {
		if got == stage {
			return errors.New("injected crash at " + stage)
		}
		return nil
	}
}

// expectExactlyOnce reopens dir and asserts the store holds exactly
// the values [0, want) once each.
func expectExactlyOnce(t *testing.T, dir string, want int) {
	t.Helper()
	s := openTest(t, dir, nil)
	defer s.Close()
	all := s.QueryRange("traffic", time.Time{}, t0.Add(24*time.Hour))
	if len(all) != want {
		t.Fatalf("recovered %d readings, want %d", len(all), want)
	}
	seen := map[float64]bool{}
	for _, r := range all {
		if seen[r.Value] {
			t.Fatalf("value %v recovered twice", r.Value)
		}
		seen[r.Value] = true
	}
}

// TestCrashMidFlush kills the store at every flush stage boundary in
// turn and proves recovery replays each reading exactly once: before
// the manifest commit the WAL covers everything (the orphan segment
// is swept), after it the segment covers the frozen memtable and the
// WAL replay skips those ops.
func TestCrashMidFlush(t *testing.T) {
	for _, stage := range []string{"flush:encode", "flush:segment-written", "flush:manifest-written", "flush:rotate"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, nil)
			if err := s.Append(testBatch("traffic", t0, 40, time.Second, 0)); err != nil {
				t.Fatal(err)
			}
			s.SetFailpoint(crashAt(stage))
			if err := s.Flush(); err == nil {
				t.Fatal("flush survived the injected crash")
			}
			s.Discard()
			expectExactlyOnce(t, dir, 40)
		})
	}
}

// TestCrashMidCompaction does the same across compaction stages: the
// inputs stay live until the manifest swap, and an interrupted merge
// leaves either the old segments (pre-commit) or the merged one
// (post-commit) — never both, never neither.
func TestCrashMidCompaction(t *testing.T) {
	for _, stage := range []string{"compact:encode", "compact:segment-written", "compact:manifest-written"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, nil)
			for part := 0; part < 4; part++ {
				if err := s.Append(testBatch("traffic", t0.Add(time.Duration(part*10)*time.Second), 10, time.Second, float64(part*10))); err != nil {
					t.Fatal(err)
				}
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			s.SetFailpoint(crashAt(stage))
			if _, err := s.Compact(); err == nil {
				t.Fatal("compaction survived the injected crash")
			}
			s.Discard()
			expectExactlyOnce(t, dir, 40)
		})
	}
}

// TestCrashBetweenFlushes interleaves appends, flushes, and crashes
// over several generations — the WAL rotation + manifest watermark
// interplay across restarts.
func TestCrashBetweenFlushes(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for gen := 0; gen < 5; gen++ {
		s := openTest(t, dir, nil)
		if err := s.Append(testBatch("traffic", t0.Add(time.Duration(total)*time.Second), 15, time.Second, float64(total))); err != nil {
			t.Fatal(err)
		}
		total += 15
		if gen%2 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		s.Discard() // crash: no clean close, no final flush
		expectExactlyOnce(t, dir, total)
	}
}

// TestRecoveredCursorSurvivesRestart walks half a range, crashes the
// store, and resumes the same cursor against the recovered store —
// time-addressed cursors are state on the client, not the server.
func TestRecoveredCursorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Append(testBatch("traffic", t0, 30, time.Second, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testBatch("traffic", t0.Add(30*time.Second), 30, time.Second, 30)); err != nil {
		t.Fatal(err)
	}
	from, to := time.Time{}, t0.Add(24*time.Hour)
	var got []float64
	cursor := ""
	for i := 0; i < 4; i++ {
		page, next, err := s.QueryRangePage("traffic", from, to, 7, cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page {
			got = append(got, r.Value)
		}
		cursor = next
	}
	s.Discard()
	s2 := openTest(t, dir, nil)
	defer s2.Close()
	for cursor != "" {
		page, next, err := s2.QueryRangePage("traffic", from, to, 7, cursor)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page {
			got = append(got, r.Value)
		}
		cursor = next
	}
	if len(got) != 60 {
		t.Fatalf("resumed walk saw %d readings, want 60", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("position %d = %v, want %v", i, v, float64(i))
		}
	}
}

// TestManifestListsMissingSegment pins the hard-error stance: losing
// a committed segment file is bit rot needing operator attention,
// not silently dropped data.
func TestManifestListsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Append(testBatch("traffic", t0, 10, time.Second, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Discard()
	if err := removeOneSeg(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, NoBackground: true}); err == nil {
		t.Fatal("Open succeeded with a manifest-listed segment missing")
	}
}

func removeOneSeg(dir string) error {
	man, err := readManifest(dir)
	if err != nil {
		return err
	}
	if len(man.Segments) == 0 {
		return fmt.Errorf("no segments to remove")
	}
	return removeFile(dir, man.Segments[0])
}
