package segment

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
)

// validSegmentImage builds a small real segment for the fuzz seeds.
func validSegmentImage(tb testing.TB) []byte {
	runs := []typeRun{
		{typ: "noise_level", readings: normalizeBatch(testBatch("noise_level", t0, 12, time.Second, 0)).Readings},
		{typ: "traffic", readings: normalizeBatch(testBatch("traffic", t0, 5, time.Minute, 100)).Readings},
	}
	img, err := appendSegment(nil, aggregate.CodecFlate, 8, runs)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzSegmentOpen feeds arbitrary bytes to the full segment read
// surface — open (footer + index) and every block decode — asserting
// it never panics and that damage surfaces as the typed errors.
func FuzzSegmentOpen(f *testing.F) {
	img := validSegmentImage(f)
	f.Add(img)
	f.Add(img[:len(img)-7])                // truncated footer
	f.Add(img[:len(fileMagic)])            // header only
	f.Add([]byte(fileMagic + footerMagic)) // magic sandwich, no body
	f.Add([]byte{})                        // empty
	f.Add([]byte("f2cseg01 garbage here")) // bad footer
	torn := append([]byte(nil), img...)    // torn tail: zeroed end
	for i := len(torn) - 12; i < len(torn); i++ {
		torn[i] = 0
	}
	f.Add(torn)
	flip := append([]byte(nil), img...) // corrupt block payload
	flip[len(fileMagic)+frameHeader+2] ^= 0x10
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := newSegment("fuzz", data, false)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		total := 0
		for _, m := range g.blocks {
			rs, err := g.blockReadings(m)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
					t.Fatalf("untyped block error: %v", err)
				}
				continue
			}
			total += len(rs)
			// A readable block must also be fetchable.
			if _, _, err := g.fetch(nil, m.typ, m.minT, m.maxT, 0); err != nil {
				t.Fatalf("fetch after successful decode: %v", err)
			}
		}
		_ = total
	})
}

// FuzzSegmentRoundTrip derives readings from the fuzz input, writes
// a segment, reopens it, and requires the decode to be lossless —
// the encode→decode contract under arbitrary values, times, and
// dictionary shapes.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte("spread readings across blocks and types"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		runs := runsFromFuzz(data)
		if len(runs) == 0 {
			return
		}
		img, err := appendSegment(nil, aggregate.CodecFlate, 4, runs)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		g, err := newSegment("fuzz", img, false)
		if err != nil {
			t.Fatalf("reopen of own encoding: %v", err)
		}
		for _, run := range runs {
			got, _, err := g.fetch(nil, run.typ, math.MinInt64, math.MaxInt64, 0)
			if err != nil {
				t.Fatalf("fetch %s: %v", run.typ, err)
			}
			if !reflect.DeepEqual(got, run.readings) {
				t.Fatalf("type %s: round trip lost data:\n in  %+v\n out %+v", run.typ, run.readings, got)
			}
		}
	})
}

// runsFromFuzz decodes the fuzz input into canonical-order type runs
// (8 bytes per reading: type selector, time offset, value).
func runsFromFuzz(data []byte) []typeRun {
	types := []string{"a", "noise_level", "x"}
	byType := map[string][]model.Reading{}
	for len(data) >= 8 {
		chunk := data[:8]
		data = data[8:]
		typ := types[int(chunk[0])%len(types)]
		offset := int64(binary.LittleEndian.Uint32(chunk[1:5])) // seconds
		value := float64(binary.LittleEndian.Uint16(chunk[5:7]))
		r := model.Reading{
			SensorID: "s" + string(rune('a'+chunk[7]%5)),
			TypeName: typ,
			Category: model.CategoryUrban,
			Time:     t0.Add(time.Duration(offset) * time.Second),
			Value:    value,
			Unit:     "u",
		}
		byType[typ] = append(byType[typ], r)
	}
	var runs []typeRun
	for _, typ := range types {
		rs := byType[typ]
		if len(rs) == 0 {
			continue
		}
		b := &model.Batch{TypeName: typ, Category: model.CategoryUrban, Collected: rs[0].Time, Readings: rs}
		nb := normalizeBatch(b)
		rs = nb.Readings
		sortReadings(rs)
		runs = append(runs, typeRun{typ: typ, readings: rs})
	}
	return runs
}

func sortReadings(rs []model.Reading) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && canonLess(&rs[j], &rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
