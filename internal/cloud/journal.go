package cloud

import (
	"fmt"
	"sync"
	"time"

	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sensor"
	"f2c/internal/wal"
)

// The cloud journal persists the preservation block: every batch the
// cloud accepts is journaled (with the delivering hop and its delivery
// sequence) before it is archived, and data-destruction cutoffs are
// journaled so recovery does not resurrect expired records. The
// journal mutex makes append+apply atomic against checkpoints, so a
// snapshot is always a consistent cut of the archive plus the replay
// filter deduping at-least-once retries.
//
// Snapshot layout (version 3; version 2 lacked the alert section and
// version 1 additionally lacked the preserve counter — both are still
// accepted, v1 falling back to the record count):
//
//	[version u8]
//	[preserveSeq u64]                       (version >= 2)
//	[origins uvarint] { [origin string] [n uvarint] { [seq u64] }* }*
//	[records uvarint] { [provenance uvarint { [node string] }*]
//	                    [batch bytes (sensor wire, uvarint-framed)] }*
//	[alerts uvarint] { [instance JSON (protocol.Alert, uvarint-framed)] }*   (version >= 3)
//
// Restored records re-enter through the same classification path as
// live preserves; StoredAt is re-stamped with the recovery clock and
// version counters restart, which only affects provenance metadata,
// never the preserved readings.
const (
	cloudJournalVersion   = 3
	cloudJournalVersionV2 = 2
	cloudJournalVersionV1 = 1

	recPreserve  = 1 // pre-numbering preserve (read-side only)
	recExpire    = 2
	recPreserve2 = 3 // preserve carrying its preserve number
	recAlert     = 4 // accepted alert push (raw wire payload)
)

type cloudJournal struct {
	mu     sync.Mutex
	store  *wal.Store
	buf    []byte
	closed bool
}

func openCloudJournal(cfg wal.Config) (*cloudJournal, error) {
	st, err := wal.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &cloudJournal{store: st}, nil
}

// appendPreserve journals one accepted batch under its preserve
// number pseq and the delivering hop's sequence seq. The caller holds
// j.mu for the whole append+apply sequence.
func (j *cloudJournal) appendPreserveLocked(pseq, seq uint64, from string, b *model.Batch) error {
	if j.closed {
		return fmt.Errorf("cloud: journal closed")
	}
	j.buf = append(j.buf[:0], recPreserve2)
	j.buf = wal.AppendUint64(j.buf, pseq)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, from)
	j.buf = sensor.AppendBatch(j.buf, b)
	return j.store.Append(j.buf)
}

// appendAlertLocked journals one accepted alert push verbatim (the
// payload already carries its (Origin, Seq) delivery identity and the
// per-alert instance identities, so replay recovers both the dedup
// mark and the stored instances from one record). The caller holds
// j.mu for the whole append+apply sequence.
func (j *cloudJournal) appendAlertLocked(payload []byte) error {
	if j.closed {
		return fmt.Errorf("cloud: journal closed")
	}
	j.buf = append(j.buf[:0], recAlert)
	j.buf = append(j.buf, payload...)
	return j.store.Append(j.buf)
}

func (j *cloudJournal) appendExpireLocked(before time.Time) error {
	if j.closed {
		return fmt.Errorf("cloud: journal closed")
	}
	j.buf = append(j.buf[:0], recExpire)
	j.buf = wal.AppendUint64(j.buf, uint64(before.UnixNano()))
	return j.store.Append(j.buf)
}

func (j *cloudJournal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.store.Close()
}

// encodeCloudSnapshot folds the preserve counter, the archive, the
// filter dump and the stored alert instances into one snapshot
// payload.
func encodeCloudSnapshot(dst []byte, preserveSeq uint64, marks map[string][]uint64, records []archivedRecord, alerts []protocol.Alert) ([]byte, error) {
	dst = append(dst, cloudJournalVersion)
	dst = wal.AppendUint64(dst, preserveSeq)
	dst = wal.AppendMarkSet(dst, marks)
	dst = wal.AppendUvarint(dst, uint64(len(records)))
	var wire []byte
	for _, rec := range records {
		dst = wal.AppendUvarint(dst, uint64(len(rec.provenance)))
		for _, node := range rec.provenance {
			dst = wal.AppendString(dst, node)
		}
		wire = sensor.AppendBatch(wire[:0], rec.batch)
		dst = wal.AppendBytes(dst, wire)
	}
	dst = wal.AppendUvarint(dst, uint64(len(alerts)))
	for i := range alerts {
		doc, err := protocol.EncodeJSON(alerts[i])
		if err != nil {
			return nil, fmt.Errorf("cloud: snapshot alert: %w", err)
		}
		dst = wal.AppendBytes(dst, doc)
	}
	return dst, nil
}

// archivedRecord is the snapshot shape of one preserved batch.
type archivedRecord struct {
	provenance []string
	batch      *model.Batch
}

// cloudRecovery is the decoded durable state of a cloud node: the
// snapshot's archived records (full provenance), then the journal
// tail's preserves and expires in log order.
type cloudRecovery struct {
	marks   []cloudMark
	records []archivedRecord
	// alerts are the snapshot's stored alert instances (already
	// deduped by instance key when the snapshot was cut).
	alerts []protocol.Alert
	tail   []tailOp
	// preserveSeq is the snapshot's preserve counter: the highest
	// number assigned to any preserve folded into the snapshot. A
	// version-1 snapshot (pre-numbering) falls back to its record
	// count, which is exact when nothing ever expired and otherwise a
	// safe lower bound (version-1 lives never numbered their series
	// appends, so no watermark exists to collide with).
	preserveSeq uint64
}

type cloudMark struct {
	origin string
	seq    uint64
}

// tailOp is one replayed journal record: a preserve (batch set, with
// its preserve number when journaled by a numbering cloud), an alert
// push (alerts set) or an expire (before set).
type tailOp struct {
	batch  *model.Batch
	from   string
	pseq   uint64
	alerts *protocol.AlertPush
	before time.Time
}

func decodeCloudSnapshot(data []byte, rs *cloudRecovery) error {
	if len(data) == 0 {
		return nil
	}
	version := data[0]
	if version != cloudJournalVersion && version != cloudJournalVersionV2 && version != cloudJournalVersionV1 {
		return fmt.Errorf("cloud: unsupported snapshot version %d", version)
	}
	rest := data[1:]
	var err error
	if version >= 2 {
		rs.preserveSeq, rest, err = wal.ReadUint64(rest)
		if err != nil {
			return err
		}
	}
	rest, err = wal.ReadMarkSet(rest, func(origin string, seq uint64) {
		rs.marks = append(rs.marks, cloudMark{origin: origin, seq: seq})
	})
	if err != nil {
		return err
	}
	records, rest, err := wal.ReadUvarint(rest)
	if err != nil {
		return err
	}
	for i := uint64(0); i < records; i++ {
		var hops uint64
		hops, rest, err = wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		// hops is untrusted: grow the slice by appends instead of
		// preallocating from a corrupt count.
		var prov []string
		for k := uint64(0); k < hops; k++ {
			var node string
			node, rest, err = wal.ReadString(rest)
			if err != nil {
				return err
			}
			prov = append(prov, node)
		}
		var wire []byte
		wire, rest, err = wal.ReadBytes(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(wire)
		if err != nil {
			return fmt.Errorf("cloud: snapshot batch: %w", err)
		}
		rs.records = append(rs.records, archivedRecord{provenance: prov, batch: b})
	}
	if version >= 3 {
		var alerts uint64
		alerts, rest, err = wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		for i := uint64(0); i < alerts; i++ {
			var doc []byte
			doc, rest, err = wal.ReadBytes(rest)
			if err != nil {
				return err
			}
			var a protocol.Alert
			if err := protocol.DecodeJSON(doc, &a); err != nil {
				return fmt.Errorf("cloud: snapshot alert: %w", err)
			}
			rs.alerts = append(rs.alerts, a)
		}
	}
	if version == cloudJournalVersionV1 {
		rs.preserveSeq = uint64(len(rs.records))
	}
	return nil
}

func (rs *cloudRecovery) applyRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("cloud: empty journal record")
	}
	body := rec[1:]
	switch rec[0] {
	case recPreserve, recPreserve2:
		var pseq uint64
		var err error
		if rec[0] == recPreserve2 {
			pseq, body, err = wal.ReadUint64(body)
			if err != nil {
				return err
			}
		}
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		from, rest, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(rest)
		if err != nil {
			return fmt.Errorf("cloud: journal batch: %w", err)
		}
		rs.tail = append(rs.tail, tailOp{batch: b, from: from, pseq: pseq})
		if seq != 0 {
			rs.marks = append(rs.marks, cloudMark{origin: b.NodeID, seq: seq})
		}
	case recAlert:
		push, err := protocol.DecodeAlertPush(body)
		if err != nil {
			return fmt.Errorf("cloud: journal alert: %w", err)
		}
		rs.tail = append(rs.tail, tailOp{alerts: push})
		rs.marks = append(rs.marks, cloudMark{origin: push.Origin, seq: push.Seq})
	case recExpire:
		ns, _, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		rs.tail = append(rs.tail, tailOp{before: time.Unix(0, int64(ns))})
	default:
		return fmt.Errorf("cloud: unknown journal record type %d", rec[0])
	}
	return nil
}

// provenanceOf rebuilds the lineage Preserve records: origin, the
// delivering hop when distinct, and the cloud endpoint.
func provenanceOf(origin, from, cloudID string) []string {
	prov := []string{origin}
	if from != "" && from != origin {
		prov = append(prov, from)
	}
	return append(prov, cloudID)
}
