// Package cloud implements the top layer of the F2C hierarchy: the
// permanent data-preservation block (classification + archive), deep
// historical processing over the whole city's data, and the
// data-dissemination phase as an open-data HTTP interface (paper
// §IV.B: "these phases are not urgent and ... executed at the cloud
// level, where the permanent storage is performed").
package cloud

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sched"
	"f2c/internal/segment"
	"f2c/internal/sim"
	"f2c/internal/store"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// Config configures the cloud node.
type Config struct {
	// ID is the endpoint name (conventionally "cloud").
	ID string
	// City names the deployment.
	City string
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Registry receives metrics; nil allocates a private one.
	Registry *metrics.Registry
	// Codec compresses query response pages travelling back down the
	// WAN (default zip, matching the upward path).
	Codec aggregate.Codec
	// MaxQueryPage bounds how many readings one query response may
	// carry; historical scans over the archive stream in
	// cursor-linked pages. Zero selects protocol.DefaultPageLimit.
	MaxQueryPage int
	// ReplayWindow bounds how many recently preserved batch sequences
	// the cloud remembers per origin for at-least-once dedup. Zero
	// selects protocol.DefaultReplayWindow.
	ReplayWindow int
	// Scheduler, when set, gates the cloud's handler path with the
	// per-class weighted-fair admission scheduler, mirroring the fog
	// tiers: historical queries keep their share of the cloud's
	// capacity while the whole city's ingest converges on it.
	Scheduler *sched.Options
	// Retention, when > 0, runs the data-destruction phase
	// automatically: archived records older than Retention are expired
	// periodically on the ingest path (the paper's "unless any expiry
	// time is defined" — the cloud preset is years, configured per
	// deployment). Zero preserves permanently.
	Retention time.Duration
	// Durability, when set, journals every preserved batch (and every
	// data-destruction cutoff) to a write-ahead log with periodic
	// snapshots in Durability.Dir, and recovers the archive, the query
	// series and the replay-filter marks from it at construction — so
	// archived history survives a cloud restart. Nil (the default)
	// keeps the node fully in-memory.
	Durability *wal.Config
	// Storage, when set, backs the historical query series with the
	// tiered segment engine instead of the permanent in-RAM
	// TimeSeries, and redirects the archive's reading-range scans
	// (open-data dissemination) to the same mmap'd segments. Each
	// preserve is numbered and the number journaled with the batch, so
	// recovery replays the journal tail into the self-durable store
	// exactly once. Registry and MetricsPrefix default from the cloud
	// config when zero; Retention stays 0 (permanent) unless set.
	Storage *segment.Options
}

// querySeries is the cloud's historical query store: the permanent
// in-RAM TimeSeries or the durable segment.Store. AppendSeq carries
// the preserve number used to dedupe journal replay into a
// self-durable store; the RAM store ignores it.
type querySeries interface {
	AppendSeq(b *model.Batch, seq uint64) error
	Latest(sensorID string) (model.Reading, bool)
	QueryRange(typeName string, from, to time.Time) []model.Reading
	QueryRangePage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error)
	Stats() store.Stats
}

// ramSeries adapts store.TimeSeries to querySeries: preserve numbers
// exist only to make replay into a self-durable store idempotent, so
// the in-RAM store (rebuilt from scratch each recovery) drops them.
type ramSeries struct{ *store.TimeSeries }

func (r ramSeries) AppendSeq(b *model.Batch, _ uint64) error { return r.Append(b) }

// Node is the cloud layer. Safe for concurrent use.
type Node struct {
	cfg     Config
	archive *store.Archive
	series  querySeries
	// segStore aliases series when the segment engine backs it (nil
	// on an in-RAM cloud): it owns on-disk state closed with the
	// node, and it recovers itself, so journal replay dedupes against
	// its preserve-number watermark instead of re-appending.
	segStore *segment.Store
	replay   *protocol.ReplayFilter
	journal  *cloudJournal // durability log; nil when off
	// preserveSeq numbers accepted batches 1, 2, ... in journal order;
	// guarded by journal.mu (never advanced on a journal-less cloud,
	// where replay cannot happen and number 0 means "unnumbered").
	preserveSeq uint64

	// sched gates the handler path per traffic class (nil = off).
	sched *sched.Scheduler
	// sumMu guards degraded: per-type window summaries pushed up by
	// degrading fog nodes — the reduced-resolution record of readings
	// the edge could not afford to ship raw. Kept in memory (summaries
	// are the overload fallback, not the archive of record).
	sumMu    sync.Mutex
	degraded map[string]map[int64]aggregate.WindowSummary
	// expireTick counts preserves toward the next automatic retention
	// sweep (guarded by sumMu; cadence only, no correctness).
	expireTick int

	// alertMu guards alerts: fired continuous-query results keyed by
	// instance identity (Alert.Key). Push-level retries are caught by
	// the replay filter; the instance key additionally absorbs the
	// same fire arriving under two delivery identities (retry-queue
	// folding, post-crash refires), which is what makes alert delivery
	// exactly-once end to end. Lock order: journal.mu before alertMu.
	alertMu sync.Mutex
	alerts  map[string]protocol.Alert

	ingestedBatches *metrics.Counter
	ingestedReads   *metrics.Counter
	dupBatches      *metrics.Counter
	degradedReads   *metrics.Counter
	alertsStored    *metrics.Counter
	dupAlerts       *metrics.Counter
}

// New builds a cloud node.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cloud: config needs an id")
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.WallClock{}
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.City == "" {
		cfg.City = "city"
	}
	if cfg.Codec == 0 {
		cfg.Codec = aggregate.CodecZip
	}
	if !cfg.Codec.Valid() {
		return nil, fmt.Errorf("cloud: invalid codec %d", int(cfg.Codec))
	}
	if cfg.MaxQueryPage <= 0 {
		cfg.MaxQueryPage = protocol.DefaultPageLimit
	}
	n := &Node{
		cfg:             cfg,
		archive:         store.NewArchive(),
		replay:          protocol.NewReplayFilter(cfg.ReplayWindow),
		degraded:        make(map[string]map[int64]aggregate.WindowSummary),
		alerts:          make(map[string]protocol.Alert),
		ingestedBatches: cfg.Registry.Counter(cfg.ID + ".ingest.batches"),
		ingestedReads:   cfg.Registry.Counter(cfg.ID + ".ingest.readings"),
		dupBatches:      cfg.Registry.Counter(cfg.ID + ".ingest.duplicates"),
		degradedReads:   cfg.Registry.Counter(cfg.ID + ".ingest.degraded_readings"),
		alertsStored:    cfg.Registry.Counter(cfg.ID + ".alerts.instances"),
		dupAlerts:       cfg.Registry.Counter(cfg.ID + ".alerts.duplicates"),
	}
	if cfg.Scheduler != nil {
		n.sched = sched.New(*cfg.Scheduler, cfg.Clock, cfg.Registry, cfg.ID+".sched.")
	}
	if cfg.Storage != nil {
		so := *cfg.Storage
		if so.Registry == nil {
			so.Registry = cfg.Registry
		}
		if so.MetricsPrefix == "" {
			so.MetricsPrefix = cfg.ID + "."
		}
		gs, err := segment.Open(so)
		if err != nil {
			return nil, fmt.Errorf("cloud: storage: %w", err)
		}
		n.series, n.segStore = gs, gs
		n.archive.SetScanSource(gs)
	} else {
		n.series = ramSeries{store.NewTimeSeries(0)} // permanent
	}
	if cfg.Durability != nil {
		j, err := openCloudJournal(*cfg.Durability)
		if err != nil {
			if n.segStore != nil {
				n.segStore.Discard()
			}
			return nil, fmt.Errorf("cloud: %w", err)
		}
		if err := n.recoverJournal(j); err != nil {
			_ = j.close()
			if n.segStore != nil {
				n.segStore.Discard()
			}
			return nil, fmt.Errorf("cloud: %w", err)
		}
		n.journal = j
	}
	return n, nil
}

// recoverJournal rebuilds the archive, the query series and the
// replay-filter marks from a journal: snapshot records first, then the
// log tail's preserves and expires in order. Metrics are not
// re-counted — recovered batches were accounted by their first life.
func (n *Node) recoverJournal(j *cloudJournal) error {
	rs := &cloudRecovery{}
	if err := decodeCloudSnapshot(j.store.Snapshot(), rs); err != nil {
		return err
	}
	for _, rec := range j.store.Records() {
		if err := rs.applyRecord(rec); err != nil {
			return err
		}
	}
	now := n.cfg.Clock.Now()
	counter := rs.preserveSeq
	for _, rec := range rs.records {
		if _, err := n.archive.Put(rec.batch, rec.provenance, now); err != nil {
			return err
		}
		// A segment-backed series skips snapshot records: preserve
		// completes the series append before releasing the journal
		// mutex a checkpoint needs, so every batch a snapshot folded
		// in was already in the segment store's own WAL when the
		// snapshot was cut, and Open recovered it.
		if n.segStore == nil {
			if err := n.series.AppendSeq(rec.batch, 0); err != nil {
				return err
			}
		}
	}
	for _, a := range rs.alerts {
		n.alerts[a.Key()] = a
	}
	for _, op := range rs.tail {
		if op.alerts != nil {
			// The tail is the crash window: the record landed but the
			// in-memory apply may not have. storeAlerts dedupes by
			// instance key, so replay over the snapshot is exactly-once.
			n.storeAlerts(op.alerts, false)
			continue
		}
		if op.batch != nil {
			pseq := op.pseq
			if pseq == 0 { // pre-numbering record: assign in log order
				counter++
				pseq = counter
			} else if pseq > counter {
				counter = pseq
			}
			if _, err := n.archive.Put(op.batch, provenanceOf(op.batch.NodeID, op.from, n.cfg.ID), now); err != nil {
				return err
			}
			// The tail is the crash window: the journal append landed
			// but the series append may not have. AppendSeq re-applies
			// it; a segment store drops preserve numbers at or below
			// its recovered watermark, so replay is exactly-once.
			if err := n.series.AppendSeq(op.batch, pseq); err != nil {
				return err
			}
		} else {
			n.archive.Expire(op.before)
			if n.segStore != nil {
				n.segStore.EvictBefore(op.before)
			}
		}
	}
	n.preserveSeq = counter
	for _, m := range rs.marks {
		n.replay.Mark(m.origin, m.seq)
	}
	return nil
}

// DuplicateBatches reports how many at-least-once duplicate
// deliveries the cloud's receive path suppressed.
func (n *Node) DuplicateBatches() int64 { return n.dupBatches.Value() }

// ID returns the endpoint name.
func (n *Node) ID() string { return n.cfg.ID }

// Archive exposes the classified permanent store (read-side).
func (n *Node) Archive() *store.Archive { return n.archive }

// Preserve runs the preservation block on an arriving batch:
// classification (category/type/day indexing), lineage recording, and
// permanent archiving. On a durable cloud the batch is journaled
// before it is applied.
func (n *Node) Preserve(b *model.Batch, from string) error {
	return n.preserve(b, from, 0)
}

// preserve journals (durable mode), archives and — when the batch
// carried a delivery sequence — marks the replay filter, all under
// the journal mutex so a checkpoint always sees log and state agree.
// Journaling the mark with the batch closes the recovery hole of
// separate records: a recovered cloud either has both the batch and
// its dedup mark or neither, so a sender's retry is either recognized
// or re-preserves exactly once.
func (n *Node) preserve(b *model.Batch, from string, seq uint64) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("cloud preserve: %w", err)
	}
	var pseq uint64
	if n.journal != nil {
		n.journal.mu.Lock()
		defer n.journal.mu.Unlock()
		n.preserveSeq++
		pseq = n.preserveSeq
		if err := n.journal.appendPreserveLocked(pseq, seq, from, b); err != nil {
			n.preserveSeq-- // unjournaled number: reuse it
			return fmt.Errorf("cloud preserve: %w", err)
		}
	}
	now := n.cfg.Clock.Now()
	if _, err := n.archive.Put(b, provenanceOf(b.NodeID, from, n.cfg.ID), now); err != nil {
		return fmt.Errorf("cloud preserve: %w", err)
	}
	if err := n.series.AppendSeq(b, pseq); err != nil {
		return fmt.Errorf("cloud preserve: %w", err)
	}
	if seq != 0 {
		n.replay.Mark(b.NodeID, seq)
	}
	n.ingestedBatches.Inc()
	n.ingestedReads.Add(int64(len(b.Readings)))
	return nil
}

// acceptSummaryPush folds a degraded summary push into the cloud's
// per-type window summaries, deduped by (origin, seq) exactly like
// batches. The windows merge decomposably, so retries and multi-hop
// re-emissions (fog1 -> fog2 -> cloud) converge to the same totals.
func (n *Node) acceptSummaryPush(push protocol.SummaryPush) {
	n.sumMu.Lock()
	wins, ok := n.degraded[push.TypeName]
	if !ok {
		wins = make(map[int64]aggregate.WindowSummary)
		n.degraded[push.TypeName] = wins
	}
	for _, w := range push.Windows {
		cur, ok := wins[w.StartUnix]
		if !ok {
			cur = aggregate.WindowSummary{
				Start: time.Unix(0, w.StartUnix), End: time.Unix(0, w.EndUnix),
			}
		}
		cur.Summary = cur.Summary.Merge(w.Summary)
		wins[w.StartUnix] = cur
	}
	n.sumMu.Unlock()
	n.degradedReads.Add(push.Readings())
}

// acceptAlertPush journals (durable mode), stores and marks one
// decoded alert push, all under the journal mutex so a checkpoint
// always sees log, alert store and replay filter agree — the same
// atomicity preserve gives batches. The payload is journaled verbatim:
// it already carries the (Origin, Seq) delivery identity and every
// instance identity, so one record recovers both the dedup mark and
// the stored alerts.
func (n *Node) acceptAlertPush(push *protocol.AlertPush, payload []byte) error {
	if n.journal != nil {
		n.journal.mu.Lock()
		defer n.journal.mu.Unlock()
		if err := n.journal.appendAlertLocked(payload); err != nil {
			return fmt.Errorf("cloud alert: %w", err)
		}
	}
	n.storeAlerts(push, true)
	n.replay.Mark(push.Origin, push.Seq)
	return nil
}

// storeAlerts folds a push's instances into the alert store, deduping
// by instance key. Recovery replays with counted=false: restored
// instances were accounted by their first life.
func (n *Node) storeAlerts(push *protocol.AlertPush, counted bool) {
	n.alertMu.Lock()
	for i := range push.Alerts {
		key := push.Alerts[i].Key()
		if _, ok := n.alerts[key]; ok {
			if counted {
				n.dupAlerts.Inc()
			}
			continue
		}
		n.alerts[key] = push.Alerts[i]
		if counted {
			n.alertsStored.Inc()
		}
	}
	n.alertMu.Unlock()
}

// AlertInstances returns every stored fired-alert instance in the
// deterministic (SubID, StartUnix, FiredBy, Kind) order — the cloud's
// exactly-once record of what the fog tier's standing queries fired.
func (n *Node) AlertInstances() []protocol.Alert {
	n.alertMu.Lock()
	out := make([]protocol.Alert, 0, len(n.alerts))
	for _, a := range n.alerts {
		out = append(out, a)
	}
	n.alertMu.Unlock()
	protocol.SortAlerts(out)
	return out
}

// DuplicateAlerts reports how many already-stored alert instances
// arrived again under a fresh delivery identity (retry-queue folding,
// post-crash refires) and were suppressed by instance-key dedup.
func (n *Node) DuplicateAlerts() int64 { return n.dupAlerts.Value() }

// DegradedReadings reports how many raw readings arrived at the cloud
// as degraded window summaries instead of raw batches.
func (n *Node) DegradedReadings() int64 { return n.degradedReads.Value() }

// DegradedSummaries returns a type's degraded windows in time order —
// the reduced-resolution record of what the edge folded away.
func (n *Node) DegradedSummaries(typeName string) []aggregate.WindowSummary {
	n.sumMu.Lock()
	defer n.sumMu.Unlock()
	wins := n.degraded[typeName]
	out := make([]aggregate.WindowSummary, 0, len(wins))
	for _, w := range wins {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// maybeExpire runs the automatic data-destruction sweep every ~1024
// preserves when Retention is configured. It is called from Handle
// after preserve has returned (never inside it: Expire takes the
// journal mutex preserve holds).
func (n *Node) maybeExpire() {
	if n.cfg.Retention <= 0 {
		return
	}
	n.sumMu.Lock()
	n.expireTick++
	due := n.expireTick >= 1024
	if due {
		n.expireTick = 0
	}
	n.sumMu.Unlock()
	if due {
		n.Expire(n.cfg.Clock.Now().Add(-n.cfg.Retention))
	}
}

// Historical returns archived readings of a type in [from, to] — the
// paper's historical data served to deep-processing applications.
func (n *Node) Historical(typeName string, from, to time.Time) []model.Reading {
	return n.series.QueryRange(typeName, from, to)
}

// HistoricalPage serves one bounded page of the historical scan: at
// most min(limit, MaxQueryPage) readings plus the cursor resuming the
// scan, so a query over the whole archive streams instead of
// materializing one unbounded response.
func (n *Node) HistoricalPage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error) {
	if limit <= 0 || limit > n.cfg.MaxQueryPage {
		limit = n.cfg.MaxQueryPage
	}
	return n.series.QueryRangePage(typeName, from, to, limit, cursor)
}

// Latest serves point lookups (slow path compared to fog layer 1: the
// data had to travel the whole hierarchy first).
func (n *Node) Latest(sensorID string) (model.Reading, bool) {
	return n.series.Latest(sensorID)
}

// Analyze runs the data-processing block over historical data: fixed
// time windows of decomposable summaries per type.
func (n *Node) Analyze(typeName string, from, to time.Time, window time.Duration) ([]aggregate.WindowSummary, error) {
	readings := n.Historical(typeName, from, to)
	byType, err := aggregate.WindowizeByType(readings, window)
	if err != nil {
		return nil, fmt.Errorf("cloud analyze: %w", err)
	}
	return byType[typeName], nil
}

// Expire runs the data-destruction phase: archived records collected
// before the cutoff are permanently removed ("data will be
// permanently preserved at cloud layer, unless any expiry time is
// defined"). Returns the number of destroyed records. The query
// series keeps its data until its own retention (permanent by
// default); destruction applies to the archive of record. A durable
// cloud journals the cutoff so recovery does not resurrect destroyed
// records.
func (n *Node) Expire(before time.Time) int {
	if n.journal != nil {
		n.journal.mu.Lock()
		defer n.journal.mu.Unlock()
		_ = n.journal.appendExpireLocked(before)
	}
	destroyed := n.archive.Expire(before)
	if n.segStore != nil {
		// Segment destruction is whole-segment granular: a segment
		// straddling the cutoff keeps its (destroyed) readings on disk
		// until a later cutoff passes its newest reading.
		n.segStore.EvictBefore(before)
	}
	return destroyed
}

// Checkpoint folds a durable cloud's archive and replay-filter marks
// into a snapshot and truncates the journal, bounding recovery time.
// No-op on an in-memory cloud.
func (n *Node) Checkpoint() error {
	if n.journal == nil {
		return nil
	}
	n.journal.mu.Lock()
	defer n.journal.mu.Unlock()
	if n.journal.closed {
		return nil
	}
	recs := n.archive.Records()
	ars := make([]archivedRecord, len(recs))
	for i, r := range recs {
		ars[i] = archivedRecord{provenance: r.Provenance, batch: r.Batch}
	}
	data, err := encodeCloudSnapshot(nil, n.preserveSeq, n.replay.Dump(), ars, n.AlertInstances())
	if err != nil {
		return fmt.Errorf("cloud: checkpoint: %w", err)
	}
	if err := n.journal.store.WriteSnapshot(data); err != nil {
		return fmt.Errorf("cloud: checkpoint: %w", err)
	}
	return nil
}

// maybeCheckpoint runs an automatic checkpoint once the journal has
// grown past its snapshot threshold; errors are dropped and retried at
// the next preserve. Because a cloud snapshot rewrites the whole
// (permanent, ever-growing) archive, the trigger is geometric: the
// log tail must also be at least a quarter of the archive, so total
// checkpoint I/O stays linear in data preserved instead of quadratic.
func (n *Node) maybeCheckpoint() {
	if n.journal == nil {
		return
	}
	n.journal.mu.Lock()
	threshold := n.journal.store.SnapshotThreshold()
	appends := n.journal.store.AppendsSinceSnapshot()
	due := !n.journal.closed && threshold > 0 && appends >= threshold
	n.journal.mu.Unlock()
	if due && appends*4 >= n.archive.Len() {
		_ = n.Checkpoint()
	}
}

// Discard releases a durable cloud's journal file handle without a
// checkpoint — crash-semantics teardown for restart simulations; the
// on-disk state stays exactly as the last append left it.
func (n *Node) Discard() {
	if n.journal != nil {
		_ = n.journal.close()
	}
	if n.segStore != nil {
		n.segStore.Discard()
	}
}

// Close writes a final checkpoint and closes the journal of a durable
// cloud; an in-memory cloud closes as a no-op. Safe to call multiple
// times.
func (n *Node) Close() error {
	var err error
	if n.journal != nil {
		err = n.Checkpoint()
		if cerr := n.journal.close(); err == nil {
			err = cerr
		}
	}
	if n.segStore != nil {
		if cerr := n.segStore.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Status reports cloud state.
func (n *Node) Status() protocol.StatusResponse {
	st := n.series.Stats()
	return protocol.StatusResponse{
		NodeID:          n.cfg.ID,
		Layer:           "cloud",
		StoredReadings:  st.Readings,
		StoredSeries:    st.Series,
		IngestedBatches: n.ingestedBatches.Value(),
	}
}

var _ transport.Handler = (*Node)(nil)

// Handle implements transport.Handler for upward batches, degraded
// summary pushes, historical queries and control. With a scheduler
// configured, every message first passes the per-class weighted-fair
// admission gate (see fognode.Handle).
func (n *Node) Handle(ctx context.Context, msg transport.Message) ([]byte, error) {
	if n.sched != nil {
		release, err := n.sched.Admit(ctx, transport.ClassNameOf(msg.Kind), int64(len(msg.Payload)))
		if err != nil {
			if errors.Is(err, sched.ErrOverloaded) {
				return nil, fmt.Errorf("cloud: %w", transport.ErrOverloaded)
			}
			return nil, err
		}
		defer release()
	}
	switch msg.Kind {
	case transport.KindBatch:
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
		if err != nil {
			return nil, err
		}
		// At-least-once dedup, keyed by the batch's origin so a copy
		// arriving through a sibling relay and a direct retry dedupe
		// against each other (see fognode.Handle).
		if n.replay.Seen(b.NodeID, seq) {
			n.dupBatches.Inc()
			return []byte("ok"), nil
		}
		// preserve journals batch + mark as one record and marks the
		// filter itself after a successful archive.
		if err := n.preserve(b, msg.From, seq); err != nil {
			return nil, err
		}
		n.maybeCheckpoint()
		n.maybeExpire()
		return []byte("ok"), nil
	case transport.KindAlertPush:
		push, err := protocol.DecodeAlertPush(msg.Payload)
		if err != nil {
			return nil, err
		}
		if n.replay.Seen(push.Origin, push.Seq) {
			n.dupBatches.Inc()
			return []byte("ok"), nil
		}
		if err := n.acceptAlertPush(push, msg.Payload); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case transport.KindSummaryPush:
		var push protocol.SummaryPush
		if err := protocol.DecodeJSON(msg.Payload, &push); err != nil {
			return nil, err
		}
		if err := push.Validate(); err != nil {
			return nil, err
		}
		if n.replay.Seen(push.Origin, push.Seq) {
			n.dupBatches.Inc()
			return []byte("ok"), nil
		}
		n.acceptSummaryPush(push)
		n.replay.Mark(push.Origin, push.Seq)
		return []byte("ok"), nil
	case transport.KindQuery:
		var req protocol.QueryRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		var page protocol.QueryPage
		if req.SensorID != "" {
			if r, ok := n.Latest(req.SensorID); ok {
				page.Found = true
				page.Readings = []model.Reading{r}
			}
		} else {
			from, to := req.Range()
			readings, next, err := n.HistoricalPage(req.TypeName, from, to, req.Limit, req.Cursor)
			if err != nil {
				return nil, fmt.Errorf("cloud: query: %w", err)
			}
			page.Readings = readings
			page.NextCursor = next
			page.Found = len(readings) > 0 || next != ""
		}
		return protocol.EncodeQueryPage(n.cfg.ID, page, n.cfg.Codec)
	case transport.KindSummary:
		var req protocol.SummaryRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		from, to := req.Range()
		sum := aggregate.Summarize(n.Historical(req.TypeName, from, to))
		return protocol.EncodeJSON(protocol.SummaryResponse{Summary: sum})
	case transport.KindControl:
		var req protocol.ControlRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		switch req.Op {
		case protocol.OpStatus:
			return protocol.EncodeJSON(n.Status())
		case protocol.OpMetrics:
			return protocol.EncodeJSON(n.cfg.Registry.Export())
		default:
			return nil, fmt.Errorf("cloud: unsupported control op %q", req.Op)
		}
	default:
		return nil, fmt.Errorf("cloud: unsupported message kind %q", msg.Kind)
	}
}
