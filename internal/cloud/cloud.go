// Package cloud implements the top layer of the F2C hierarchy: the
// permanent data-preservation block (classification + archive), deep
// historical processing over the whole city's data, and the
// data-dissemination phase as an open-data HTTP interface (paper
// §IV.B: "these phases are not urgent and ... executed at the cloud
// level, where the permanent storage is performed").
package cloud

import (
	"context"
	"errors"
	"fmt"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/store"
	"f2c/internal/transport"
)

// Config configures the cloud node.
type Config struct {
	// ID is the endpoint name (conventionally "cloud").
	ID string
	// City names the deployment.
	City string
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Registry receives metrics; nil allocates a private one.
	Registry *metrics.Registry
	// Codec compresses query response pages travelling back down the
	// WAN (default zip, matching the upward path).
	Codec aggregate.Codec
	// MaxQueryPage bounds how many readings one query response may
	// carry; historical scans over the archive stream in
	// cursor-linked pages. Zero selects protocol.DefaultPageLimit.
	MaxQueryPage int
	// ReplayWindow bounds how many recently preserved batch sequences
	// the cloud remembers per origin for at-least-once dedup. Zero
	// selects protocol.DefaultReplayWindow.
	ReplayWindow int
}

// Node is the cloud layer. Safe for concurrent use.
type Node struct {
	cfg     Config
	archive *store.Archive
	series  *store.TimeSeries
	replay  *protocol.ReplayFilter

	ingestedBatches *metrics.Counter
	ingestedReads   *metrics.Counter
	dupBatches      *metrics.Counter
}

// New builds a cloud node.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cloud: config needs an id")
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.WallClock{}
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.City == "" {
		cfg.City = "city"
	}
	if cfg.Codec == 0 {
		cfg.Codec = aggregate.CodecZip
	}
	if !cfg.Codec.Valid() {
		return nil, fmt.Errorf("cloud: invalid codec %d", int(cfg.Codec))
	}
	if cfg.MaxQueryPage <= 0 {
		cfg.MaxQueryPage = protocol.DefaultPageLimit
	}
	return &Node{
		cfg:             cfg,
		archive:         store.NewArchive(),
		series:          store.NewTimeSeries(0), // permanent
		replay:          protocol.NewReplayFilter(cfg.ReplayWindow),
		ingestedBatches: cfg.Registry.Counter(cfg.ID + ".ingest.batches"),
		ingestedReads:   cfg.Registry.Counter(cfg.ID + ".ingest.readings"),
		dupBatches:      cfg.Registry.Counter(cfg.ID + ".ingest.duplicates"),
	}, nil
}

// DuplicateBatches reports how many at-least-once duplicate
// deliveries the cloud's receive path suppressed.
func (n *Node) DuplicateBatches() int64 { return n.dupBatches.Value() }

// ID returns the endpoint name.
func (n *Node) ID() string { return n.cfg.ID }

// Archive exposes the classified permanent store (read-side).
func (n *Node) Archive() *store.Archive { return n.archive }

// Preserve runs the preservation block on an arriving batch:
// classification (category/type/day indexing), lineage recording, and
// permanent archiving.
func (n *Node) Preserve(b *model.Batch, from string) error {
	provenance := []string{b.NodeID}
	if from != "" && from != b.NodeID {
		provenance = append(provenance, from)
	}
	provenance = append(provenance, n.cfg.ID)
	now := n.cfg.Clock.Now()
	if _, err := n.archive.Put(b, provenance, now); err != nil {
		return fmt.Errorf("cloud preserve: %w", err)
	}
	if err := n.series.Append(b); err != nil {
		return fmt.Errorf("cloud preserve: %w", err)
	}
	n.ingestedBatches.Inc()
	n.ingestedReads.Add(int64(len(b.Readings)))
	return nil
}

// Historical returns archived readings of a type in [from, to] — the
// paper's historical data served to deep-processing applications.
func (n *Node) Historical(typeName string, from, to time.Time) []model.Reading {
	return n.series.QueryRange(typeName, from, to)
}

// HistoricalPage serves one bounded page of the historical scan: at
// most min(limit, MaxQueryPage) readings plus the cursor resuming the
// scan, so a query over the whole archive streams instead of
// materializing one unbounded response.
func (n *Node) HistoricalPage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error) {
	if limit <= 0 || limit > n.cfg.MaxQueryPage {
		limit = n.cfg.MaxQueryPage
	}
	return n.series.QueryRangePage(typeName, from, to, limit, cursor)
}

// Latest serves point lookups (slow path compared to fog layer 1: the
// data had to travel the whole hierarchy first).
func (n *Node) Latest(sensorID string) (model.Reading, bool) {
	return n.series.Latest(sensorID)
}

// Analyze runs the data-processing block over historical data: fixed
// time windows of decomposable summaries per type.
func (n *Node) Analyze(typeName string, from, to time.Time, window time.Duration) ([]aggregate.WindowSummary, error) {
	readings := n.Historical(typeName, from, to)
	byType, err := aggregate.WindowizeByType(readings, window)
	if err != nil {
		return nil, fmt.Errorf("cloud analyze: %w", err)
	}
	return byType[typeName], nil
}

// Expire runs the data-destruction phase: archived records collected
// before the cutoff are permanently removed ("data will be
// permanently preserved at cloud layer, unless any expiry time is
// defined"). Returns the number of destroyed records. The query
// series keeps its data until its own retention (permanent by
// default); destruction applies to the archive of record.
func (n *Node) Expire(before time.Time) int {
	return n.archive.Expire(before)
}

// Status reports cloud state.
func (n *Node) Status() protocol.StatusResponse {
	st := n.series.Stats()
	return protocol.StatusResponse{
		NodeID:          n.cfg.ID,
		Layer:           "cloud",
		StoredReadings:  st.Readings,
		StoredSeries:    st.Series,
		IngestedBatches: n.ingestedBatches.Value(),
	}
}

var _ transport.Handler = (*Node)(nil)

// Handle implements transport.Handler for upward batches, historical
// queries and control.
func (n *Node) Handle(ctx context.Context, msg transport.Message) ([]byte, error) {
	switch msg.Kind {
	case transport.KindBatch:
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
		if err != nil {
			return nil, err
		}
		// At-least-once dedup, keyed by the batch's origin so a copy
		// arriving through a sibling relay and a direct retry dedupe
		// against each other (see fognode.Handle).
		if n.replay.Seen(b.NodeID, seq) {
			n.dupBatches.Inc()
			return []byte("ok"), nil
		}
		if err := n.Preserve(b, msg.From); err != nil {
			return nil, err
		}
		n.replay.Mark(b.NodeID, seq)
		return []byte("ok"), nil
	case transport.KindQuery:
		var req protocol.QueryRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		var page protocol.QueryPage
		if req.SensorID != "" {
			if r, ok := n.Latest(req.SensorID); ok {
				page.Found = true
				page.Readings = []model.Reading{r}
			}
		} else {
			from, to := req.Range()
			readings, next, err := n.HistoricalPage(req.TypeName, from, to, req.Limit, req.Cursor)
			if err != nil {
				return nil, fmt.Errorf("cloud: query: %w", err)
			}
			page.Readings = readings
			page.NextCursor = next
			page.Found = len(readings) > 0 || next != ""
		}
		return protocol.EncodeQueryPage(n.cfg.ID, page, n.cfg.Codec)
	case transport.KindSummary:
		var req protocol.SummaryRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		if err := req.Validate(); err != nil {
			return nil, err
		}
		from, to := req.Range()
		sum := aggregate.Summarize(n.Historical(req.TypeName, from, to))
		return protocol.EncodeJSON(protocol.SummaryResponse{Summary: sum})
	case transport.KindControl:
		var req protocol.ControlRequest
		if err := protocol.DecodeJSON(msg.Payload, &req); err != nil {
			return nil, err
		}
		if req.Op != protocol.OpStatus {
			return nil, fmt.Errorf("cloud: unsupported control op %q", req.Op)
		}
		return protocol.EncodeJSON(n.Status())
	default:
		return nil, fmt.Errorf("cloud: unsupported message kind %q", msg.Kind)
	}
}
