package cloud

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func newCloud(t *testing.T) *Node {
	t.Helper()
	n, err := New(Config{ID: "cloud", City: "barcelona", Clock: sim.NewVirtualClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func trafficBatch(node string, at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: node, TypeName: "traffic", Category: model.CategoryUrban, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: node + "/traffic/" + string(rune('a'+i)), TypeName: "traffic",
			Category: model.CategoryUrban, Time: at, Value: v, Unit: "km/h",
		})
	}
	return b
}

func TestPreserveArchivesAndIndexes(t *testing.T) {
	n := newCloud(t)
	if err := n.Preserve(trafficBatch("fog2/d01", t0, 50, 60), "fog2/d01"); err != nil {
		t.Fatal(err)
	}
	if n.Archive().Len() != 1 {
		t.Fatalf("archive len = %d", n.Archive().Len())
	}
	rec := n.Archive().ByType("traffic")[0]
	// Provenance: origin node + cloud (from == NodeID collapses).
	if len(rec.Provenance) != 2 || rec.Provenance[0] != "fog2/d01" || rec.Provenance[1] != "cloud" {
		t.Errorf("provenance = %v", rec.Provenance)
	}
	got := n.Historical("traffic", t0.Add(-time.Minute), t0.Add(time.Minute))
	if len(got) != 2 {
		t.Errorf("historical = %d readings", len(got))
	}
	if _, ok := n.Latest("fog2/d01/traffic/a"); !ok {
		t.Error("latest lookup failed")
	}
	st := n.Status()
	if st.StoredReadings != 2 || st.IngestedBatches != 1 || st.Layer != "cloud" {
		t.Errorf("status = %+v", st)
	}
}

func TestPreserveRecordsIntermediateHop(t *testing.T) {
	n := newCloud(t)
	b := trafficBatch("fog1/d01-s01", t0, 50)
	if err := n.Preserve(b, "fog2/d01"); err != nil {
		t.Fatal(err)
	}
	rec := n.Archive().ByType("traffic")[0]
	want := []string{"fog1/d01-s01", "fog2/d01", "cloud"}
	if len(rec.Provenance) != 3 {
		t.Fatalf("provenance = %v, want %v", rec.Provenance, want)
	}
	for i := range want {
		if rec.Provenance[i] != want[i] {
			t.Fatalf("provenance = %v, want %v", rec.Provenance, want)
		}
	}
}

func TestAnalyze(t *testing.T) {
	n := newCloud(t)
	for i := 0; i < 4; i++ {
		at := t0.Add(time.Duration(i*30) * time.Minute)
		if err := n.Preserve(trafficBatch("fog2/d01", at, float64(10*(i+1))), "fog2/d01"); err != nil {
			t.Fatal(err)
		}
	}
	windows, err := n.Analyze("traffic", t0, t0.Add(3*time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(windows))
	}
	if windows[0].Avg() != 15 { // readings 10, 20 in the first hour
		t.Errorf("first window avg = %v, want 15", windows[0].Avg())
	}
	if _, err := n.Analyze("traffic", t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("expected error for zero window")
	}
}

func TestHandleBatchAndQuery(t *testing.T) {
	n := newCloud(t)
	payload, err := protocol.EncodeBatchPayload(trafficBatch("fog2/d01", t0, 42), aggregate.CodecZip)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Handle(context.Background(), transport.Message{
		From: "fog2/d01", Kind: transport.KindBatch, Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}

	req, _ := protocol.EncodeJSON(protocol.QueryRequest{
		TypeName: "traffic", FromUnix: t0.Add(-time.Hour).UnixNano(), ToUnix: t0.Add(time.Hour).UnixNano(),
	})
	reply, err := n.Handle(context.Background(), transport.Message{Kind: transport.KindQuery, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeQueryPage(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || len(resp.Readings) != 1 || resp.Readings[0].Value != 42 {
		t.Errorf("resp = %+v", resp)
	}

	// Latest by sensor.
	req, _ = protocol.EncodeJSON(protocol.QueryRequest{SensorID: "fog2/d01/traffic/a"})
	reply, err = n.Handle(context.Background(), transport.Message{Kind: transport.KindQuery, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = protocol.DecodeQueryPage(reply)
	if !resp.Found {
		t.Error("latest by sensor not found")
	}

	// Status control.
	req, _ = protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpStatus})
	reply, err = n.Handle(context.Background(), transport.Message{Kind: transport.KindControl, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	var st protocol.StatusResponse
	if err := protocol.DecodeJSON(reply, &st); err != nil {
		t.Fatal(err)
	}
	if st.NodeID != "cloud" {
		t.Errorf("status = %+v", st)
	}
}

func TestHandleErrors(t *testing.T) {
	n := newCloud(t)
	cases := []transport.Message{
		{Kind: transport.KindBatch, Payload: []byte("junk")},
		{Kind: transport.KindQuery, Payload: []byte("junk")},
		{Kind: transport.KindQuery, Payload: []byte(`{}`)},
		{Kind: transport.KindControl, Payload: []byte("junk")},
		{Kind: transport.KindControl, Payload: []byte(`{"op":"flush"}`)},
		{Kind: "nope"},
	}
	for i, msg := range cases {
		if _, err := n.Handle(context.Background(), msg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
}

func TestOpenDataAPI(t *testing.T) {
	n := newCloud(t)
	_ = n.Preserve(trafficBatch("fog2/d01", t0, 50, 60), "fog2/d01")
	srv := httptest.NewServer(n.OpenDataHandler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/opendata/v1/categories")
	if resp.StatusCode != 200 {
		t.Fatalf("categories status = %d", resp.StatusCode)
	}
	var cats []struct {
		Name    string `json:"name"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal(body, &cats); err != nil {
		t.Fatal(err)
	}
	if len(cats) != 5 {
		t.Errorf("categories = %d, want 5", len(cats))
	}
	urbanRecords := 0
	for _, c := range cats {
		if c.Name == "urban" {
			urbanRecords = c.Records
		}
	}
	if urbanRecords != 1 {
		t.Errorf("urban records = %d, want 1", urbanRecords)
	}

	resp, body = get("/opendata/v1/days")
	var days []string
	if err := json.Unmarshal(body, &days); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(days) != 1 || days[0] != "2017-06-01" {
		t.Errorf("days = %v (status %d)", days, resp.StatusCode)
	}

	resp, body = get("/opendata/v1/types/traffic/readings")
	var readings []model.Reading
	if err := json.Unmarshal(body, &readings); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(readings) != 2 {
		t.Errorf("readings = %d (status %d)", len(readings), resp.StatusCode)
	}

	resp, body = get("/opendata/v1/types/traffic/summary?windowSeconds=3600")
	var windows []aggregate.WindowSummary
	if err := json.Unmarshal(body, &windows); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(windows) != 1 || windows[0].Count != 2 {
		t.Errorf("summary = %+v (status %d)", windows, resp.StatusCode)
	}

	resp, _ = get("/opendata/v1/status")
	if resp.StatusCode != 200 {
		t.Errorf("status endpoint = %d", resp.StatusCode)
	}

	// Privacy: people_flow is restricted, not public.
	resp, _ = get("/opendata/v1/types/people_flow/readings")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("people_flow status = %d, want 403", resp.StatusCode)
	}

	// Bad params.
	resp, _ = get("/opendata/v1/types/traffic/readings?fromUnixNano=zzz")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad range status = %d, want 400", resp.StatusCode)
	}
	resp, _ = get("/opendata/v1/types/traffic/summary?windowSeconds=-5")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window status = %d, want 400", resp.StatusCode)
	}

	// Empty results are JSON arrays, not null.
	_, body = get("/opendata/v1/types/weather/readings")
	if string(body) != "[]\n" {
		t.Errorf("empty readings body = %q, want []", body)
	}
}
