package cloud

// Durability tests for the preservation block: a crashed cloud
// (rebuilt from its data directory without Close) must serve the same
// archive, the same historical queries, and still dedupe retried
// deliveries it acknowledged before the crash.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

var c0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func newDurableCloud(t testing.TB, dir string) *Node {
	t.Helper()
	n, err := New(Config{
		ID: "cloud", Clock: sim.NewVirtualClock(c0),
		Durability: &wal.Config{Dir: dir, SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func cloudBatch(origin, typ string, at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: origin, TypeName: typ, Category: model.CategoryUrban, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: fmt.Sprintf("%s/%d", typ, i), TypeName: typ, Category: model.CategoryUrban,
			Time: at.Add(time.Duration(i) * time.Millisecond), Value: v, Unit: "u",
		})
	}
	return b
}

func TestCloudRecoveryRestoresArchiveAndSeries(t *testing.T) {
	dir := t.TempDir()
	n := newDurableCloud(t, dir)
	if err := n.Preserve(cloudBatch("fog2/d01", "traffic", c0, 1, 2, 3), "fog2/d01"); err != nil {
		t.Fatal(err)
	}
	if err := n.Preserve(cloudBatch("fog2/d02", "noise_level", c0.Add(time.Minute), 4), "fog2/d02"); err != nil {
		t.Fatal(err)
	}

	re := newDurableCloud(t, dir) // crash: no Close
	if got := re.Archive().Len(); got != 2 {
		t.Fatalf("recovered archive records = %d, want 2", got)
	}
	if got := re.Historical("traffic", c0, c0.Add(time.Hour)); len(got) != 3 {
		t.Errorf("recovered historical traffic = %d readings, want 3", len(got))
	}
	if r, ok := re.Latest("noise_level/0"); !ok || r.Value != 4 {
		t.Errorf("recovered Latest = %+v ok=%v", r, ok)
	}
	recs := re.Archive().ByType("traffic")
	if len(recs) != 1 || len(recs[0].Provenance) == 0 || recs[0].Provenance[0] != "fog2/d01" {
		t.Errorf("recovered provenance = %+v", recs)
	}
}

// TestCloudRecoveryDedupesRetryAcrossRestart is the receiver-crash
// regression at the top of the hierarchy: the cloud preserves a
// sequenced delivery, crashes before the sender's retry lands, and
// must recognize the retry after recovery instead of archiving twice.
func TestCloudRecoveryDedupesRetryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	n := newDurableCloud(t, dir)
	b := cloudBatch("fog2/d01", "traffic", c0, 10, 11)
	payload, err := (&protocol.Sealer{}).SealSeq(nil, b, aggregate.CodecNone, 99)
	if err != nil {
		t.Fatal(err)
	}
	msg := transport.Message{From: "fog2/d01", To: "cloud", Kind: transport.KindBatch, Payload: payload}
	if _, err := n.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}

	re := newDurableCloud(t, dir) // crash between the duplicate deliveries
	if _, err := re.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if got := re.DuplicateBatches(); got != 1 {
		t.Errorf("duplicates suppressed after restart = %d, want 1", got)
	}
	if got := re.Archive().Len(); got != 1 {
		t.Errorf("archive records = %d, want 1 (retry re-archived after restart?)", got)
	}
	if got := re.Historical("traffic", c0, c0.Add(time.Hour)); len(got) != 2 {
		t.Errorf("historical readings = %d, want 2", len(got))
	}
}

// TestCloudRecoveryHonorsExpire: destroyed records stay destroyed
// across a crash.
func TestCloudRecoveryHonorsExpire(t *testing.T) {
	dir := t.TempDir()
	n := newDurableCloud(t, dir)
	_ = n.Preserve(cloudBatch("fog2/d01", "traffic", c0, 1), "fog2/d01")
	_ = n.Preserve(cloudBatch("fog2/d01", "traffic", c0.Add(2*time.Hour), 2), "fog2/d01")
	if destroyed := n.Expire(c0.Add(time.Hour)); destroyed != 1 {
		t.Fatalf("expired %d records, want 1", destroyed)
	}

	re := newDurableCloud(t, dir)
	if got := re.Archive().Len(); got != 1 {
		t.Errorf("recovered archive records = %d, want 1 (expired record resurrected?)", got)
	}
}

// TestCloudRecoveryFromCheckpoint folds the archive into a snapshot,
// preserves a tail past it, and recovers both.
func TestCloudRecoveryFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	n := newDurableCloud(t, dir)
	_ = n.Preserve(cloudBatch("fog2/d01", "traffic", c0, 1, 2), "fog2/d01")
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = n.Preserve(cloudBatch("fog2/d01", "traffic", c0.Add(time.Minute), 3), "fog2/d01")

	re := newDurableCloud(t, dir)
	if got := re.Archive().Len(); got != 2 {
		t.Fatalf("recovered archive records = %d, want 2 (snapshot + tail)", got)
	}
	if got := re.Historical("traffic", c0, c0.Add(time.Hour)); len(got) != 3 {
		t.Errorf("recovered historical readings = %d, want 3", len(got))
	}
}

// TestCloudRecoveryPropertySeeded randomizes preserve/expire/crash/
// checkpoint interleavings and asserts the recovered archive always
// equals the pre-crash archive, reproducible from the printed seed.
func TestCloudRecoveryPropertySeeded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cloudRecoveryProperty(t, seed)
		})
	}
}

func cloudRecoveryProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	n := newDurableCloud(t, dir)
	origins := []string{"fog2/d01", "fog2/d02"}
	types := []string{"traffic", "noise_level"}
	nextVal := 0.0
	at := c0
	failf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("cloud recovery property (rerun with seed %d): %s", seed, fmt.Sprintf(format, args...))
	}
	for op := 0; op < 120; op++ {
		at = at.Add(time.Minute)
		switch k := rng.Intn(10); {
		case k < 6:
			origin := origins[rng.Intn(len(origins))]
			typ := types[rng.Intn(len(types))]
			vals := make([]float64, 1+rng.Intn(4))
			for i := range vals {
				nextVal++
				vals[i] = nextVal
			}
			if err := n.Preserve(cloudBatch(origin, typ, at, vals...), origin); err != nil {
				failf("preserve: %v", err)
			}
		case k < 7:
			n.Expire(at.Add(-time.Duration(rng.Intn(90)) * time.Minute))
		case k < 9:
			wantLen := n.Archive().Len()
			wantReadings := n.Archive().Stats().Readings
			n = newDurableCloud(t, dir)
			if got := n.Archive().Len(); got != wantLen {
				failf("op %d: recovered archive len = %d, want %d", op, got, wantLen)
			}
			if got := n.Archive().Stats().Readings; got != wantReadings {
				failf("op %d: recovered archive readings = %d, want %d", op, got, wantReadings)
			}
		default:
			if err := n.Checkpoint(); err != nil {
				failf("checkpoint: %v", err)
			}
		}
	}
}
