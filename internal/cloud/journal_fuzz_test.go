package cloud

import "testing"

// FuzzCloudSnapshotDecode proves the cloud's snapshot and journal
// record decoders never panic on arbitrary bytes — corrupt counts and
// truncated fields must fail with errors, not allocate or crash
// (CRC framing upstream makes this unlikely, not impossible).
func FuzzCloudSnapshotDecode(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{cloudJournalVersion}, []byte{recPreserve})
	// Huge origin/record/hop counts with no bytes behind them.
	f.Add([]byte{cloudJournalVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		[]byte{recExpire, 1, 2, 3})
	valid, err := encodeCloudSnapshot(nil, 7, map[string][]uint64{"fog2/d01": {1, 2}}, nil, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, []byte{recPreserve, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(valid, []byte{recPreserve2, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(valid, []byte{recAlert, 0xF5, 1, 0xFF})

	f.Fuzz(func(t *testing.T, snap, rec []byte) {
		rs := &cloudRecovery{}
		_ = decodeCloudSnapshot(snap, rs)
		_ = rs.applyRecord(rec)
	})
}
