package cloud

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/describe"
	"f2c/internal/model"
)

// OpenDataHandler implements the data-dissemination phase: a public
// read-only HTTP interface over the cloud archive, in the spirit of
// Barcelona's Sentilo open-data platform. Restricted/personal data
// (per the description phase's privacy tagging) is not disseminated.
//
// Routes:
//
//	GET /opendata/v1/categories
//	GET /opendata/v1/days
//	GET /opendata/v1/types/{type}/readings?fromUnixNano=&toUnixNano=&limit=&cursor=
//	GET /opendata/v1/types/{type}/summary?fromUnixNano=&toUnixNano=&windowSeconds=
//	GET /opendata/v1/status
//
// Readings are served from the archive of record in bounded pages:
// limit caps the readings per response (clamped to the node's page
// limit) and the X-Next-Cursor response header resumes the scan.
func (n *Node) OpenDataHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /opendata/v1/categories", n.serveCategories)
	mux.HandleFunc("GET /opendata/v1/days", n.serveDays)
	mux.HandleFunc("GET /opendata/v1/types/{type}/readings", n.serveReadings)
	mux.HandleFunc("GET /opendata/v1/types/{type}/summary", n.serveSummary)
	mux.HandleFunc("GET /opendata/v1/status", n.serveStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// disseminable reports whether a sensor type may be published.
func disseminable(typeName string) bool {
	return describe.PrivacyFor(typeName) == describe.PrivacyPublic
}

func (n *Node) serveCategories(w http.ResponseWriter, _ *http.Request) {
	type catInfo struct {
		Name    string `json:"name"`
		Records int    `json:"records"`
	}
	out := make([]catInfo, 0, 5)
	for _, c := range model.Categories() {
		out = append(out, catInfo{Name: c.String(), Records: len(n.archive.ByCategory(c))})
	}
	writeJSON(w, out)
}

func (n *Node) serveDays(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, n.archive.Days())
}

func parseRange(r *http.Request) (from, to time.Time, err error) {
	parse := func(key string, def int64) (int64, error) {
		s := r.URL.Query().Get(key)
		if s == "" {
			return def, nil
		}
		return strconv.ParseInt(s, 10, 64)
	}
	fromNs, err := parse("fromUnixNano", 0)
	if err != nil {
		return from, to, err
	}
	toNs, err := parse("toUnixNano", time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	if err != nil {
		return from, to, err
	}
	return time.Unix(0, fromNs), time.Unix(0, toNs), nil
}

func (n *Node) serveReadings(w http.ResponseWriter, r *http.Request) {
	typeName := r.PathValue("type")
	if !disseminable(typeName) {
		http.Error(w, "type is not public open data", http.StatusForbidden)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, "bad time range: "+err.Error(), http.StatusBadRequest)
		return
	}
	limit := n.cfg.MaxQueryPage
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if v < limit {
			limit = v
		}
	}
	readings, next, err := n.archive.ReadingsPage(typeName, from, to, limit, r.URL.Query().Get("cursor"))
	if err != nil {
		http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
		return
	}
	if readings == nil {
		readings = []model.Reading{}
	}
	if next != "" {
		w.Header().Set("X-Next-Cursor", next)
	}
	writeJSON(w, readings)
}

func (n *Node) serveSummary(w http.ResponseWriter, r *http.Request) {
	typeName := r.PathValue("type")
	if !disseminable(typeName) {
		http.Error(w, "type is not public open data", http.StatusForbidden)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, "bad time range: "+err.Error(), http.StatusBadRequest)
		return
	}
	windowSeconds := int64(3600)
	if s := r.URL.Query().Get("windowSeconds"); s != "" {
		windowSeconds, err = strconv.ParseInt(s, 10, 64)
		if err != nil || windowSeconds <= 0 {
			http.Error(w, "bad windowSeconds", http.StatusBadRequest)
			return
		}
	}
	windows, err := n.Analyze(typeName, from, to, time.Duration(windowSeconds)*time.Second)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if windows == nil {
		windows = []aggregate.WindowSummary{}
	}
	writeJSON(w, windows)
}

func (n *Node) serveStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, n.Status())
}
