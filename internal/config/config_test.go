package config

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/sim"
)

func TestBarcelonaDeployment(t *testing.T) {
	d := Barcelona()
	if err := d.Validate(); err != nil {
		t.Fatalf("Barcelona deployment invalid: %v", err)
	}
	topo, err := d.Topology()
	if err != nil {
		t.Fatal(err)
	}
	f1, f2, _ := topo.Counts()
	if f1 != 73 || f2 != 10 {
		t.Errorf("topology = %d/%d", f1, f2)
	}
}

func TestOptionsMapping(t *testing.T) {
	d := Barcelona()
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	opts, err := d.Options(clock)
	if err != nil {
		t.Fatal(err)
	}
	if opts.City != "Barcelona" || !opts.Dedup || !opts.Quality {
		t.Errorf("opts = %+v", opts)
	}
	if opts.Codec != aggregate.CodecZip {
		t.Errorf("codec = %v", opts.Codec)
	}
	if opts.Fog1FlushInterval != 15*time.Minute || opts.Fog2FlushInterval != time.Hour {
		t.Errorf("flush intervals = %v / %v", opts.Fog1FlushInterval, opts.Fog2FlushInterval)
	}
	if opts.Fog1Retention != time.Hour || opts.Fog2Retention != 24*time.Hour {
		t.Errorf("retentions = %v / %v", opts.Fog1Retention, opts.Fog2Retention)
	}
}

func TestElasticOwnershipMapping(t *testing.T) {
	d, err := Parse([]byte(`{
		"city": "x",
		"districts": [{"name": "a", "sections": 3}],
		"elasticOwnership": true,
		"virtualNodes": 64
	}`))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options(sim.WallClock{})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.ElasticOwnership || opts.VirtualNodes != 64 {
		t.Errorf("elastic mapping = %v / %d", opts.ElasticOwnership, opts.VirtualNodes)
	}
	// Default stays off.
	if opts, err := Barcelona().Options(sim.WallClock{}); err != nil || opts.ElasticOwnership {
		t.Errorf("Barcelona should not be elastic by default (err %v)", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.json")
	want := Barcelona()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.City != want.City || len(got.Districts) != len(want.Districts) ||
		got.Codec != want.Codec || got.Fog1FlushSeconds != want.Fog1FlushSeconds {
		t.Errorf("round trip = %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{nope`,
		"empty city":      `{"districts":[{"name":"a","sections":1}]}`,
		"no districts":    `{"city":"x"}`,
		"unnamed":         `{"city":"x","districts":[{"sections":1}]}`,
		"zero sections":   `{"city":"x","districts":[{"name":"a","sections":0}]}`,
		"bad codec":       `{"city":"x","codec":"lzma","districts":[{"name":"a","sections":1}]}`,
		"negative":        `{"city":"x","fog1FlushSeconds":-1,"districts":[{"name":"a","sections":1}]}`,
		"negative vnodes": `{"city":"x","elasticOwnership":true,"virtualNodes":-1,"districts":[{"name":"a","sections":1}]}`,
		"vnodes no ring":  `{"city":"x","virtualNodes":64,"districts":[{"name":"a","sections":1}]}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDefaultCodecIsZip(t *testing.T) {
	d, err := Parse([]byte(`{"city":"x","districts":[{"name":"a","sections":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options(sim.WallClock{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Codec != aggregate.CodecZip {
		t.Errorf("default codec = %v, want zip", opts.Codec)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("expected error")
	}
}

func TestSaveInvalidDeployment(t *testing.T) {
	if err := (Deployment{}).Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("expected error")
	}
}

func TestSavedDocumentIsReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "city.json")
	if err := Barcelona().Save(path); err != nil {
		t.Fatal(err)
	}
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(d.Districts))
	for _, ds := range d.Districts {
		names = append(names, ds.Name)
	}
	if !strings.Contains(strings.Join(names, ","), "Nou Barris") {
		t.Errorf("districts = %v", names)
	}
}

func TestPerCategoryFlushPolicy(t *testing.T) {
	d, err := Parse([]byte(`{
		"city": "x",
		"districts": [{"name": "a", "sections": 1}],
		"fog1FlushByCategorySeconds": {"urban": 300, "energy": 900}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := d.Options(sim.WallClock{})
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Fog1FlushByCategory[model.CategoryUrban]; got != 5*time.Minute {
		t.Errorf("urban flush = %v, want 5m", got)
	}
	if got := opts.Fog1FlushByCategory[model.CategoryEnergy]; got != 15*time.Minute {
		t.Errorf("energy flush = %v, want 15m", got)
	}

	// Invalid policies rejected.
	bad := []string{
		`{"city":"x","districts":[{"name":"a","sections":1}],"fog1FlushByCategorySeconds":{"plasma":60}}`,
		`{"city":"x","districts":[{"name":"a","sections":1}],"fog1FlushByCategorySeconds":{"urban":0}}`,
	}
	for i, data := range bad {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
