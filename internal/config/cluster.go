package config

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Transport names accepted by Cluster.Transport.
const (
	// TransportTCP selects the persistent-connection tcpnet transport
	// (addresses are "host:port").
	TransportTCP = "tcp"
	// TransportHTTP selects the net/http transport (addresses are
	// base URLs, "http://host:port").
	TransportHTTP = "http"
)

// Cluster maps the node ids of a multi-process deployment onto their
// network addresses, so every daemon, load driver and control tool
// reads the same one document instead of repeating -parent-url wiring
// per process. citysim's live mode writes one for the hierarchy it
// hosts.
type Cluster struct {
	// Transport selects the wire protocol: "tcp" or "http".
	Transport string `json:"transport"`
	// Nodes maps node id (e.g. "fog1/d01-s01", "cloud") to the
	// address the node listens on.
	Nodes map[string]string `json:"nodes"`
}

// Validate checks the document.
func (c Cluster) Validate() error {
	switch c.Transport {
	case TransportTCP, TransportHTTP:
	default:
		return fmt.Errorf("config: unknown cluster transport %q (want %q or %q)",
			c.Transport, TransportTCP, TransportHTTP)
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("config: cluster has no nodes")
	}
	for id, addr := range c.Nodes {
		if id == "" {
			return fmt.Errorf("config: cluster node with empty id")
		}
		if addr == "" {
			return fmt.Errorf("config: cluster node %q has empty address", id)
		}
	}
	return nil
}

// Addr resolves a node id to its address.
func (c Cluster) Addr(id string) (string, error) {
	addr, ok := c.Nodes[id]
	if !ok {
		return "", fmt.Errorf("config: cluster has no node %q", id)
	}
	return addr, nil
}

// NodeIDs returns the sorted node ids.
func (c Cluster) NodeIDs() []string {
	ids := make([]string, 0, len(c.Nodes))
	for id := range c.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ParseCluster decodes and validates a JSON document.
func ParseCluster(data []byte) (Cluster, error) {
	var c Cluster
	if err := json.Unmarshal(data, &c); err != nil {
		return Cluster{}, fmt.Errorf("config: parse cluster: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Cluster{}, err
	}
	return c, nil
}

// LoadCluster reads a cluster document from a file.
func LoadCluster(path string) (Cluster, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Cluster{}, fmt.Errorf("config: %w", err)
	}
	return ParseCluster(data)
}

// Save writes the cluster as indented JSON.
func (c Cluster) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: save cluster: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: save cluster: %w", err)
	}
	return nil
}
