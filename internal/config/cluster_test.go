package config

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestClusterRoundTrip(t *testing.T) {
	c := Cluster{
		Transport: TransportTCP,
		Nodes: map[string]string{
			"cloud":        "127.0.0.1:9000",
			"fog2/d01":     "127.0.0.1:9001",
			"fog1/d01-s01": "127.0.0.1:9002",
		},
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := c.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadCluster(path)
	if err != nil {
		t.Fatalf("LoadCluster: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("round-trip mismatch: %+v != %+v", got, c)
	}
	addr, err := got.Addr("fog2/d01")
	if err != nil || addr != "127.0.0.1:9001" {
		t.Errorf("Addr = %q, %v", addr, err)
	}
	if _, err := got.Addr("fog2/d99"); err == nil {
		t.Error("Addr of unknown node succeeded")
	}
	want := []string{"cloud", "fog1/d01-s01", "fog2/d01"}
	if ids := got.NodeIDs(); !reflect.DeepEqual(ids, want) {
		t.Errorf("NodeIDs = %v, want %v", ids, want)
	}
}

func TestClusterValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Cluster
	}{
		{"unknown transport", Cluster{Transport: "udp", Nodes: map[string]string{"cloud": "x"}}},
		{"no nodes", Cluster{Transport: TransportTCP}},
		{"empty address", Cluster{Transport: TransportHTTP, Nodes: map[string]string{"cloud": ""}}},
		{"empty id", Cluster{Transport: TransportTCP, Nodes: map[string]string{"": "x"}}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.c)
		}
	}
	if _, err := ParseCluster([]byte("{")); err == nil {
		t.Error("ParseCluster accepted malformed JSON")
	}
}
