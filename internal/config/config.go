// Package config defines the JSON deployment specification consumed
// by the command-line tools: a whole city (districts/sections), the
// aggregation settings, flush periods and retention windows, in one
// reviewable document.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/core"
	"f2c/internal/model"
	"f2c/internal/sim"
	"f2c/internal/topology"
)

// DistrictSpec is one district of the deployment.
type DistrictSpec struct {
	Name     string  `json:"name"`
	Sections int     `json:"sections"`
	Lat      float64 `json:"lat,omitempty"`
	Lon      float64 `json:"lon,omitempty"`
}

// Deployment is the city-wide configuration document.
type Deployment struct {
	City      string         `json:"city"`
	Districts []DistrictSpec `json:"districts"`
	// Codec names the upward compression: none|flate|gzip|zip.
	Codec string `json:"codec"`
	// Dedup and Quality toggle the fog layer-1 acquisition phases.
	Dedup   bool `json:"dedup"`
	Quality bool `json:"quality"`
	// Flush periods and retention windows, in seconds (JSON carries
	// no duration type; the unit is in the name per convention).
	Fog1FlushSeconds     int `json:"fog1FlushSeconds"`
	Fog2FlushSeconds     int `json:"fog2FlushSeconds"`
	Fog1RetentionSeconds int `json:"fog1RetentionSeconds"`
	Fog2RetentionSeconds int `json:"fog2RetentionSeconds"`
	// Fog1FlushByCategorySeconds overrides the layer-1 upward
	// frequency for specific categories (keyed by category name) —
	// the paper's per-business-model update policy.
	Fog1FlushByCategorySeconds map[string]int `json:"fog1FlushByCategorySeconds,omitempty"`
	// DataDir enables durability: every node journals its delivery
	// state (the cloud its archive) to a write-ahead log with
	// snapshots under DataDir/<node id> and recovers it on restart.
	// Empty keeps the deployment in-memory.
	DataDir string `json:"dataDir,omitempty"`
	// SegmentStorage backs every node's temporal store with the
	// tiered segment engine under DataDir/<node id>/store: history
	// lives in mmap'd on-disk segment files while resident memory
	// stays near the memtable cap. Requires dataDir.
	SegmentStorage bool `json:"segmentStorage,omitempty"`
	// MemtableBytes caps each segment store's in-RAM memtable before
	// it flushes to a segment file (0 = engine default).
	MemtableBytes int64 `json:"memtableBytes,omitempty"`
}

// Barcelona returns the deployment matching the paper's use case.
func Barcelona() Deployment {
	districts := make([]DistrictSpec, 0, 10)
	for _, d := range topology.BarcelonaDistricts() {
		districts = append(districts, DistrictSpec{
			Name: d.Name, Sections: d.Sections, Lat: d.Centroid.Lat, Lon: d.Centroid.Lon,
		})
	}
	return Deployment{
		City:                 "Barcelona",
		Districts:            districts,
		Codec:                "zip",
		Dedup:                true,
		Quality:              true,
		Fog1FlushSeconds:     15 * 60,
		Fog2FlushSeconds:     60 * 60,
		Fog1RetentionSeconds: 60 * 60,
		Fog2RetentionSeconds: 24 * 60 * 60,
	}
}

// Validate checks the document.
func (d Deployment) Validate() error {
	if d.City == "" {
		return fmt.Errorf("config: empty city")
	}
	if len(d.Districts) == 0 {
		return fmt.Errorf("config: no districts")
	}
	for i, ds := range d.Districts {
		if ds.Name == "" {
			return fmt.Errorf("config: district %d has no name", i)
		}
		if ds.Sections <= 0 {
			return fmt.Errorf("config: district %q has %d sections", ds.Name, ds.Sections)
		}
	}
	if _, err := d.codec(); err != nil {
		return err
	}
	for name, v := range map[string]int{
		"fog1FlushSeconds":     d.Fog1FlushSeconds,
		"fog2FlushSeconds":     d.Fog2FlushSeconds,
		"fog1RetentionSeconds": d.Fog1RetentionSeconds,
		"fog2RetentionSeconds": d.Fog2RetentionSeconds,
	} {
		if v < 0 {
			return fmt.Errorf("config: negative %s", name)
		}
	}
	for catName, v := range d.Fog1FlushByCategorySeconds {
		if _, err := model.ParseCategory(catName); err != nil {
			return fmt.Errorf("config: fog1FlushByCategorySeconds: %w", err)
		}
		if v <= 0 {
			return fmt.Errorf("config: fog1FlushByCategorySeconds[%s] must be positive", catName)
		}
	}
	if d.SegmentStorage && d.DataDir == "" {
		return fmt.Errorf("config: segmentStorage requires dataDir")
	}
	if d.MemtableBytes < 0 {
		return fmt.Errorf("config: negative memtableBytes")
	}
	return nil
}

func (d Deployment) codec() (aggregate.Codec, error) {
	if d.Codec == "" {
		return aggregate.CodecZip, nil
	}
	for _, c := range []aggregate.Codec{aggregate.CodecNone, aggregate.CodecFlate, aggregate.CodecGzip, aggregate.CodecZip} {
		if c.String() == d.Codec {
			return c, nil
		}
	}
	return 0, fmt.Errorf("config: unknown codec %q", d.Codec)
}

// Topology builds the hierarchy the document describes.
func (d Deployment) Topology() (*topology.Topology, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	districts := make([]topology.District, 0, len(d.Districts))
	for _, ds := range d.Districts {
		districts = append(districts, topology.District{
			Name:     ds.Name,
			Sections: ds.Sections,
			Centroid: model.GeoPoint{Lat: ds.Lat, Lon: ds.Lon},
		})
	}
	return topology.New(d.City, districts)
}

// Options assembles core.Options for the deployment on the given
// clock.
func (d Deployment) Options(clock sim.Clock) (core.Options, error) {
	topo, err := d.Topology()
	if err != nil {
		return core.Options{}, err
	}
	codec, err := d.codec()
	if err != nil {
		return core.Options{}, err
	}
	var byCat map[model.Category]time.Duration
	if len(d.Fog1FlushByCategorySeconds) > 0 {
		byCat = make(map[model.Category]time.Duration, len(d.Fog1FlushByCategorySeconds))
		for catName, secs := range d.Fog1FlushByCategorySeconds {
			cat, err := model.ParseCategory(catName)
			if err != nil {
				return core.Options{}, fmt.Errorf("config: %w", err)
			}
			byCat[cat] = time.Duration(secs) * time.Second
		}
	}
	return core.Options{
		Topology:            topo,
		Clock:               clock,
		City:                d.City,
		Codec:               codec,
		Dedup:               d.Dedup,
		Quality:             d.Quality,
		Fog1FlushInterval:   time.Duration(d.Fog1FlushSeconds) * time.Second,
		Fog2FlushInterval:   time.Duration(d.Fog2FlushSeconds) * time.Second,
		Fog1Retention:       time.Duration(d.Fog1RetentionSeconds) * time.Second,
		Fog2Retention:       time.Duration(d.Fog2RetentionSeconds) * time.Second,
		Fog1FlushByCategory: byCat,
		DataDir:             d.DataDir,
		SegmentStorage:      d.SegmentStorage,
		MemtableBytes:       d.MemtableBytes,
	}, nil
}

// Parse decodes and validates a JSON document.
func Parse(data []byte) (Deployment, error) {
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return Deployment{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Deployment{}, err
	}
	return d, nil
}

// Load reads a deployment from a file.
func Load(path string) (Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Deployment{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Save writes the deployment as indented JSON.
func (d Deployment) Save(path string) error {
	if err := d.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("config: save: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: save: %w", err)
	}
	return nil
}
