// Package config defines the JSON deployment specification consumed
// by the command-line tools: a whole city (districts/sections), the
// aggregation settings, flush periods and retention windows, in one
// reviewable document.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/core"
	"f2c/internal/cq"
	"f2c/internal/fognode"
	"f2c/internal/model"
	"f2c/internal/sched"
	"f2c/internal/sim"
	"f2c/internal/topology"
)

// Per-tier retention presets (paper §IV: fog layer 1 holds hours of
// temporal data, fog layer 2 days of recent history, the cloud years
// of preserved archive). Deployments use them by default; individual
// nodes override via NodeRetentionSeconds.
const (
	PresetFog1RetentionSeconds  = 60 * 60
	PresetFog2RetentionSeconds  = 24 * 60 * 60
	PresetCloudRetentionSeconds = 5 * 365 * 24 * 60 * 60
)

// DistrictSpec is one district of the deployment.
type DistrictSpec struct {
	Name     string  `json:"name"`
	Sections int     `json:"sections"`
	Lat      float64 `json:"lat,omitempty"`
	Lon      float64 `json:"lon,omitempty"`
}

// Deployment is the city-wide configuration document.
type Deployment struct {
	City      string         `json:"city"`
	Districts []DistrictSpec `json:"districts"`
	// Codec names the upward compression: none|flate|gzip|zip.
	Codec string `json:"codec"`
	// Dedup and Quality toggle the fog layer-1 acquisition phases.
	Dedup   bool `json:"dedup"`
	Quality bool `json:"quality"`
	// Flush periods and retention windows, in seconds (JSON carries
	// no duration type; the unit is in the name per convention).
	Fog1FlushSeconds     int `json:"fog1FlushSeconds"`
	Fog2FlushSeconds     int `json:"fog2FlushSeconds"`
	Fog1RetentionSeconds int `json:"fog1RetentionSeconds"`
	Fog2RetentionSeconds int `json:"fog2RetentionSeconds"`
	// Fog1FlushByCategorySeconds overrides the layer-1 upward
	// frequency for specific categories (keyed by category name) —
	// the paper's per-business-model update policy.
	Fog1FlushByCategorySeconds map[string]int `json:"fog1FlushByCategorySeconds,omitempty"`
	// DataDir enables durability: every node journals its delivery
	// state (the cloud its archive) to a write-ahead log with
	// snapshots under DataDir/<node id> and recovers it on restart.
	// Empty keeps the deployment in-memory.
	DataDir string `json:"dataDir,omitempty"`
	// SegmentStorage backs every node's temporal store with the
	// tiered segment engine under DataDir/<node id>/store: history
	// lives in mmap'd on-disk segment files while resident memory
	// stays near the memtable cap. Requires dataDir.
	SegmentStorage bool `json:"segmentStorage,omitempty"`
	// MemtableBytes caps each segment store's in-RAM memtable before
	// it flushes to a segment file (0 = engine default).
	MemtableBytes int64 `json:"memtableBytes,omitempty"`
	// CloudRetentionSeconds bounds the cloud archive's age (0 keeps
	// it forever — the pre-preset behavior).
	CloudRetentionSeconds int64 `json:"cloudRetentionSeconds,omitempty"`
	// NodeRetentionSeconds overrides the tier retention preset for
	// individual nodes, keyed by node ID (e.g. "fog1/Gràcia/3",
	// "fog2/Gràcia", "cloud").
	NodeRetentionSeconds map[string]int64 `json:"nodeRetentionSeconds,omitempty"`
	// Overload enables the per-class weighted-fair admission
	// scheduler on every node's handler path.
	Overload bool `json:"overload,omitempty"`
	// IngestRateBytes rate-limits the ingest class to this many
	// payload bytes per second (0 = unlimited; requires overload).
	IngestRateBytes int64 `json:"ingestRateBytes,omitempty"`
	// DegradeToSummary folds buffer-trimmed readings into window
	// summaries forwarded upward instead of dropping them.
	DegradeToSummary bool `json:"degradeToSummary,omitempty"`
	// DegradeWindowSeconds is the degraded-summary window width
	// (0 = fognode default, one minute).
	DegradeWindowSeconds int `json:"degradeWindowSeconds,omitempty"`
	// AdaptiveFlush enables RTT-driven flush batch/interval tuning.
	AdaptiveFlush bool `json:"adaptiveFlush,omitempty"`
	// ElasticOwnership routes each sensor type's edge ingest to its
	// consistent-hash ring owner among the district's sections and
	// enables runtime scale of fog layer 1 (AddFog1Node /
	// RemoveFog1Node with live shard migration between siblings).
	ElasticOwnership bool `json:"elasticOwnership,omitempty"`
	// VirtualNodes sets the ownership rings' virtual nodes per weight
	// unit (0 = engine default; requires elasticOwnership).
	VirtualNodes int `json:"virtualNodes,omitempty"`
	// Subscriptions are standing continuous queries registered at
	// boot: windowed aggregates or threshold predicates evaluated
	// incrementally in the fog layer-1 ingest path, with fired alerts
	// pushed upward to the cloud (no polling). Under elasticOwnership
	// each subscription lands on its sensor type's ring owner;
	// otherwise every section evaluates it.
	Subscriptions []SubscriptionSpec `json:"subscriptions,omitempty"`
}

// SubscriptionSpec is one standing continuous query of the deployment
// document. Durations are in seconds like every other field; Kind is
// "window" or "threshold", Predicate "gt" or "lt".
type SubscriptionSpec struct {
	ID            string  `json:"id"`
	Type          string  `json:"type"`
	Kind          string  `json:"kind"`
	WindowSeconds int     `json:"windowSeconds"`
	SlideSeconds  int     `json:"slideSeconds,omitempty"`
	Predicate     string  `json:"predicate,omitempty"`
	Threshold     float64 `json:"threshold,omitempty"`
}

// Subscription converts the spec into the cq engine's form.
func (s SubscriptionSpec) Subscription() cq.Subscription {
	return cq.Subscription{
		ID:        s.ID,
		TypeName:  s.Type,
		Kind:      cq.Kind(s.Kind),
		Window:    time.Duration(s.WindowSeconds) * time.Second,
		Slide:     time.Duration(s.SlideSeconds) * time.Second,
		Predicate: cq.Predicate(s.Predicate),
		Threshold: s.Threshold,
	}
}

// StandingQueries returns the deployment's boot-time subscriptions in
// the cq engine's form.
func (d Deployment) StandingQueries() []cq.Subscription {
	subs := make([]cq.Subscription, 0, len(d.Subscriptions))
	for _, s := range d.Subscriptions {
		subs = append(subs, s.Subscription())
	}
	return subs
}

// Barcelona returns the deployment matching the paper's use case.
func Barcelona() Deployment {
	districts := make([]DistrictSpec, 0, 10)
	for _, d := range topology.BarcelonaDistricts() {
		districts = append(districts, DistrictSpec{
			Name: d.Name, Sections: d.Sections, Lat: d.Centroid.Lat, Lon: d.Centroid.Lon,
		})
	}
	return Deployment{
		City:                  "Barcelona",
		Districts:             districts,
		Codec:                 "zip",
		Dedup:                 true,
		Quality:               true,
		Fog1FlushSeconds:      15 * 60,
		Fog2FlushSeconds:      60 * 60,
		Fog1RetentionSeconds:  PresetFog1RetentionSeconds,
		Fog2RetentionSeconds:  PresetFog2RetentionSeconds,
		CloudRetentionSeconds: PresetCloudRetentionSeconds,
	}
}

// Validate checks the document.
func (d Deployment) Validate() error {
	if d.City == "" {
		return fmt.Errorf("config: empty city")
	}
	if len(d.Districts) == 0 {
		return fmt.Errorf("config: no districts")
	}
	for i, ds := range d.Districts {
		if ds.Name == "" {
			return fmt.Errorf("config: district %d has no name", i)
		}
		if ds.Sections <= 0 {
			return fmt.Errorf("config: district %q has %d sections", ds.Name, ds.Sections)
		}
	}
	if _, err := d.codec(); err != nil {
		return err
	}
	for name, v := range map[string]int{
		"fog1FlushSeconds":     d.Fog1FlushSeconds,
		"fog2FlushSeconds":     d.Fog2FlushSeconds,
		"fog1RetentionSeconds": d.Fog1RetentionSeconds,
		"fog2RetentionSeconds": d.Fog2RetentionSeconds,
	} {
		if v < 0 {
			return fmt.Errorf("config: negative %s", name)
		}
	}
	for catName, v := range d.Fog1FlushByCategorySeconds {
		if _, err := model.ParseCategory(catName); err != nil {
			return fmt.Errorf("config: fog1FlushByCategorySeconds: %w", err)
		}
		if v <= 0 {
			return fmt.Errorf("config: fog1FlushByCategorySeconds[%s] must be positive", catName)
		}
	}
	if d.SegmentStorage && d.DataDir == "" {
		return fmt.Errorf("config: segmentStorage requires dataDir")
	}
	if d.MemtableBytes < 0 {
		return fmt.Errorf("config: negative memtableBytes")
	}
	if d.CloudRetentionSeconds < 0 {
		return fmt.Errorf("config: negative cloudRetentionSeconds")
	}
	for id, v := range d.NodeRetentionSeconds {
		if id == "" {
			return fmt.Errorf("config: nodeRetentionSeconds has an empty node id")
		}
		if v < 0 {
			return fmt.Errorf("config: negative nodeRetentionSeconds[%s]", id)
		}
	}
	if d.IngestRateBytes < 0 {
		return fmt.Errorf("config: negative ingestRateBytes")
	}
	if d.IngestRateBytes > 0 && !d.Overload {
		return fmt.Errorf("config: ingestRateBytes requires overload")
	}
	if d.DegradeWindowSeconds < 0 {
		return fmt.Errorf("config: negative degradeWindowSeconds")
	}
	if d.VirtualNodes < 0 {
		return fmt.Errorf("config: negative virtualNodes")
	}
	if d.VirtualNodes > 0 && !d.ElasticOwnership {
		return fmt.Errorf("config: virtualNodes requires elasticOwnership")
	}
	for i := range d.Subscriptions {
		sub := d.Subscriptions[i].Subscription()
		if err := sub.Validate(); err != nil {
			return fmt.Errorf("config: subscriptions[%d]: %w", i, err)
		}
	}
	return nil
}

func (d Deployment) codec() (aggregate.Codec, error) {
	if d.Codec == "" {
		return aggregate.CodecZip, nil
	}
	for _, c := range []aggregate.Codec{aggregate.CodecNone, aggregate.CodecFlate, aggregate.CodecGzip, aggregate.CodecZip} {
		if c.String() == d.Codec {
			return c, nil
		}
	}
	return 0, fmt.Errorf("config: unknown codec %q", d.Codec)
}

// Topology builds the hierarchy the document describes.
func (d Deployment) Topology() (*topology.Topology, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	districts := make([]topology.District, 0, len(d.Districts))
	for _, ds := range d.Districts {
		districts = append(districts, topology.District{
			Name:     ds.Name,
			Sections: ds.Sections,
			Centroid: model.GeoPoint{Lat: ds.Lat, Lon: ds.Lon},
		})
	}
	return topology.New(d.City, districts)
}

// Options assembles core.Options for the deployment on the given
// clock.
func (d Deployment) Options(clock sim.Clock) (core.Options, error) {
	topo, err := d.Topology()
	if err != nil {
		return core.Options{}, err
	}
	codec, err := d.codec()
	if err != nil {
		return core.Options{}, err
	}
	var byCat map[model.Category]time.Duration
	if len(d.Fog1FlushByCategorySeconds) > 0 {
		byCat = make(map[model.Category]time.Duration, len(d.Fog1FlushByCategorySeconds))
		for catName, secs := range d.Fog1FlushByCategorySeconds {
			cat, err := model.ParseCategory(catName)
			if err != nil {
				return core.Options{}, fmt.Errorf("config: %w", err)
			}
			byCat[cat] = time.Duration(secs) * time.Second
		}
	}
	var overload *sched.Options
	if d.Overload {
		so := OverloadOptions(d.IngestRateBytes)
		overload = &so
	}
	var adaptive *fognode.AdaptiveConfig
	if d.AdaptiveFlush {
		adaptive = &fognode.AdaptiveConfig{}
	}
	var nodeRetention map[string]time.Duration
	if len(d.NodeRetentionSeconds) > 0 {
		nodeRetention = make(map[string]time.Duration, len(d.NodeRetentionSeconds))
		for id, secs := range d.NodeRetentionSeconds {
			nodeRetention[id] = time.Duration(secs) * time.Second
		}
	}
	return core.Options{
		Topology:            topo,
		Clock:               clock,
		City:                d.City,
		Codec:               codec,
		Dedup:               d.Dedup,
		Quality:             d.Quality,
		Fog1FlushInterval:   time.Duration(d.Fog1FlushSeconds) * time.Second,
		Fog2FlushInterval:   time.Duration(d.Fog2FlushSeconds) * time.Second,
		Fog1Retention:       time.Duration(d.Fog1RetentionSeconds) * time.Second,
		Fog2Retention:       time.Duration(d.Fog2RetentionSeconds) * time.Second,
		Fog1FlushByCategory: byCat,
		DataDir:             d.DataDir,
		SegmentStorage:      d.SegmentStorage,
		MemtableBytes:       d.MemtableBytes,
		CloudRetention:      time.Duration(d.CloudRetentionSeconds) * time.Second,
		NodeRetention:       nodeRetention,
		Overload:            overload,
		DegradeToSummary:    d.DegradeToSummary,
		DegradeWindow:       time.Duration(d.DegradeWindowSeconds) * time.Second,
		AdaptiveFlush:       adaptive,
		ElasticOwnership:    d.ElasticOwnership,
		VirtualNodes:        d.VirtualNodes,
	}, nil
}

// OverloadOptions builds a deployment's admission-scheduler options:
// the default class weights, with the ingest class optionally
// token-bucket limited to rateBytes payload bytes per second
// (0 = unlimited). Shared by the deployment document and the daemon
// flags so both spell overload identically.
func OverloadOptions(rateBytes int64) sched.Options {
	so := sched.DefaultOptions()
	if rateBytes > 0 {
		c := so.Classes["ingest"]
		c.Rate = float64(rateBytes)
		c.Burst = float64(rateBytes)
		so.Classes["ingest"] = c
	}
	return so
}

// Parse decodes and validates a JSON document.
func Parse(data []byte) (Deployment, error) {
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return Deployment{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Deployment{}, err
	}
	return d, nil
}

// Load reads a deployment from a file.
func Load(path string) (Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Deployment{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Save writes the deployment as indented JSON.
func (d Deployment) Save(path string) error {
	if err := d.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("config: save: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: save: %w", err)
	}
	return nil
}
