package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir)
	if re.Snapshot() != nil {
		t.Errorf("unexpected snapshot on reopen")
	}
	got := re.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailTruncated is the crash signature: a half-written final
// frame must not surface, and the file must be cut back so new
// appends extend a clean log.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"mid-header", "mid-payload", "bad-crc"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			for i := 0; i < 5; i++ {
				if err := s.Append([]byte(fmt.Sprintf("keep-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, "wal-0")
			img, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch cut {
			case "mid-header":
				img = append(img, 0xAA, 0xBB, 0xCC)
			case "mid-payload":
				img = AppendFrame(img, []byte("torn-record"))
				img = img[:len(img)-4]
			case "bad-crc":
				img = AppendFrame(img, []byte("flipped"))
				img[len(img)-1] ^= 0x01
			}
			if err := os.WriteFile(path, img, 0o644); err != nil {
				t.Fatal(err)
			}

			re := openT(t, dir)
			if n := len(re.Records()); n != 5 {
				t.Fatalf("replayed %d records after %s corruption, want 5", n, cut)
			}
			if err := re.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			again := openT(t, dir)
			if n := len(again.Records()); n != 6 {
				t.Fatalf("post-recovery append lost: replayed %d records, want 6", n)
			}
		})
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot([]byte("state-at-gen-1")); err != nil {
		t.Fatal(err)
	}
	if got := s.AppendsSinceSnapshot(); got != 0 {
		t.Errorf("appends since snapshot = %d, want 0", got)
	}
	if err := s.Append([]byte("post-snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-0")); !os.IsNotExist(err) {
		t.Errorf("old-generation log survived rotation: %v", err)
	}

	re := openT(t, dir)
	if string(re.Snapshot()) != "state-at-gen-1" {
		t.Errorf("snapshot = %q", re.Snapshot())
	}
	if n := len(re.Records()); n != 1 || string(re.Records()[0]) != "post-snap" {
		t.Fatalf("tail = %d records %q, want [post-snap]", n, re.Records())
	}
}

// TestSnapshotCrashWindows drives the two crash points of the rotation
// sequence: after the rename but before the new log exists, and with
// the stale old log left behind.
func TestSnapshotCrashWindows(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Append([]byte("folded-into-snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window A: new log missing.
	if err := os.Remove(filepath.Join(dir, "wal-1")); err != nil {
		t.Fatal(err)
	}
	// Crash window B: stale old log still present.
	if err := os.WriteFile(filepath.Join(dir, "wal-0"), AppendFrame(nil, []byte("stale")), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir)
	if string(re.Snapshot()) != "snap" {
		t.Errorf("snapshot = %q, want snap", re.Snapshot())
	}
	if n := len(re.Records()); n != 0 {
		t.Errorf("replayed %d stale records, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-0")); !os.IsNotExist(err) {
		t.Errorf("stale log not deleted: %v", err)
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.WriteSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x01
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt snapshot opened without error")
	}
}

func TestRecordSizeBounds(t *testing.T) {
	s := openT(t, t.TempDir())
	if err := s.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := s.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized record accepted")
	}
}
