package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay proves the replay contract on arbitrary log images:
// whatever the file holds — garbage, torn frames, flipped bits — Open
// never panics, replays only checksum-intact frames, and truncates the
// file so a subsequent append round-trips cleanly.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a wal file at all"))
	f.Add(AppendFrame(nil, []byte("one intact record")))
	// Intact record followed by a torn frame.
	torn := AppendFrame(nil, []byte("intact"))
	torn = append(torn, AppendFrame(nil, []byte("torn-off"))[:11]...)
	f.Add(torn)
	// Bit flip inside the second record's payload.
	flipped := AppendFrame(AppendFrame(nil, []byte("first")), []byte("second"))
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	// Length prefix far beyond the file (and beyond MaxRecordSize).
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 5})

	f.Fuzz(func(t *testing.T, img []byte) {
		// Stream replay never panics and yields only intact frames.
		streamed, err := ReplayReader(bytes.NewReader(img))
		if err != nil {
			t.Fatalf("ReplayReader: %v", err)
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0"), img, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open on fuzzed image: %v", err)
		}
		recovered := s.Records()
		if len(recovered) != len(streamed) {
			t.Fatalf("file replay %d records, stream replay %d", len(recovered), len(streamed))
		}
		for i := range streamed {
			if !bytes.Equal(recovered[i], streamed[i]) {
				t.Fatalf("record %d diverges between file and stream replay", i)
			}
		}

		// The recovered prefix is a committed prefix: appending after
		// recovery and reopening must replay prefix + the new record.
		if err := s.Append([]byte("post-corruption append")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		again := re.Records()
		if len(again) != len(recovered)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(again), len(recovered)+1)
		}
		if string(again[len(again)-1]) != "post-corruption append" {
			t.Fatalf("appended record lost after recovery")
		}
	})
}
