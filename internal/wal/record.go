package wal

import (
	"encoding/binary"
	"fmt"
)

// Binary helpers shared by the node journal codecs: uvarint-prefixed
// strings and byte slices over append-based buffers, with bounded
// reads so corrupt lengths fail instead of allocating.

// AppendUvarint appends a uvarint-encoded value.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length prefix and the slice bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadUvarint decodes a uvarint from the front of b and returns the
// remainder.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: corrupt uvarint")
	}
	return v, b[n:], nil
}

// ReadString decodes a length-prefixed string from the front of b and
// returns the remainder.
func ReadString(b []byte) (string, []byte, error) {
	raw, rest, err := ReadBytes(b)
	if err != nil {
		return "", nil, err
	}
	return string(raw), rest, nil
}

// ReadBytes decodes a length-prefixed slice from the front of b and
// returns it (aliasing b) plus the remainder.
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wal: corrupt length prefix %d (have %d)", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// ReadUint64 decodes a fixed 8-byte little-endian value from the front
// of b and returns the remainder.
func ReadUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wal: corrupt uint64 (have %d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// AppendUint64 appends a fixed 8-byte little-endian value.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendMarkSet encodes a replay-filter dump (protocol.ReplayFilter
// Dump/Restore order contract: per-origin sequences oldest first):
// origin count, then per origin its name and sequence list. One
// encoder shared by the fog-node and cloud snapshot codecs so the two
// cannot drift.
func AppendMarkSet(dst []byte, marks map[string][]uint64) []byte {
	dst = AppendUvarint(dst, uint64(len(marks)))
	for origin, seqs := range marks {
		dst = AppendString(dst, origin)
		dst = AppendUvarint(dst, uint64(len(seqs)))
		for _, s := range seqs {
			dst = AppendUint64(dst, s)
		}
	}
	return dst
}

// ReadMarkSet decodes an AppendMarkSet payload from the front of b,
// invoking fn per (origin, seq) in encoded order, and returns the
// remainder. Counts are validated against the remaining bytes before
// any allocation, so corrupt lengths fail instead of allocating.
func ReadMarkSet(b []byte, fn func(origin string, seq uint64)) ([]byte, error) {
	origins, rest, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < origins; i++ {
		var origin string
		origin, rest, err = ReadString(rest)
		if err != nil {
			return nil, err
		}
		var n uint64
		n, rest, err = ReadUvarint(rest)
		if err != nil {
			return nil, err
		}
		if n > uint64(len(rest))/8 {
			return nil, fmt.Errorf("wal: corrupt mark count %d (have %d bytes)", n, len(rest))
		}
		for k := uint64(0); k < n; k++ {
			var seq uint64
			seq, rest, err = ReadUint64(rest)
			if err != nil {
				return nil, err
			}
			fn(origin, seq)
		}
	}
	return rest, nil
}
