// Package wal provides the durability substrate of the F2C hierarchy:
// an append-only, length-prefixed, CRC-framed write-ahead log paired
// with generation-rotated snapshots in one directory.
//
// The paper's data-preservation phase promises that data accepted at a
// fog tier survives until it reaches the cloud archive; an in-memory
// node cannot keep that promise across a process crash. A durable node
// therefore journals every state change that matters for upward
// delivery (accepted readings, sealed delivery sequences, commits,
// sheds, replay-filter marks) through a Store, and periodically folds
// the journal into a snapshot so recovery stays bounded.
//
// # On-disk layout
//
// A Store owns one directory:
//
//	snapshot        the newest snapshot (atomic rename; carries its
//	                generation and a CRC over its payload)
//	wal-<gen>       the record log holding everything appended since
//	                the generation-<gen> snapshot
//
// WriteSnapshot advances the generation: it writes snapshot.tmp,
// fsyncs, renames it over snapshot, creates wal-<gen+1> and removes
// the old log. Every crash window of that sequence is recoverable:
// a snapshot without its log replays as snapshot-only, and stale logs
// from older generations are ignored and deleted on open.
//
// # Record framing
//
// Each record is framed as
//
//	[4-byte little-endian length][4-byte CRC-32C of payload][payload]
//
// Replay on open stops at the first frame that is short, oversized or
// fails its checksum — the torn tail of a crashed append — and
// truncates the file back to the last intact frame, so the recovered
// prefix is exactly the records whose Append returned success, and
// subsequent appends extend a clean log. Corruption never panics; it
// only shortens the replayed prefix.
//
// A Store serializes nothing itself: callers own the locking (nodes
// already serialize journal writes with their own mutex so appends
// stay ordered with the state changes they describe).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Config configures a durable node's Store.
type Config struct {
	// Dir is the node's snapshot+log directory (created if missing).
	Dir string
	// SnapshotEvery is how many appended records trigger an automatic
	// checkpoint at the owner's next safe point (fog nodes check after
	// each flush). Zero selects DefaultSnapshotEvery; negative
	// disables automatic checkpoints (explicit ones still work).
	SnapshotEvery int
	// SyncEveryAppend fsyncs the log after every record. Off by
	// default: the log is written through the OS page cache and synced
	// at snapshots and on Close, which survives process crashes (the
	// failure mode the chaos harness injects) but can lose the tail on
	// a whole-machine power cut.
	SyncEveryAppend bool
}

// DefaultSnapshotEvery is the automatic-checkpoint record threshold
// used when Config.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// frameHeader is bytes per record frame before the payload.
const frameHeader = 8

// MaxRecordSize bounds one record's payload; a corrupt length prefix
// beyond it stops replay instead of forcing a giant allocation.
const MaxRecordSize = 1 << 26

// snapshot file framing: magic, version, generation, payload length,
// payload CRC-32C, payload.
const (
	snapMagic   = "f2cs"
	snapVersion = 1
	snapHeader  = 4 + 1 + 8 + 4 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store couples a snapshot file and the current-generation record log.
// Not safe for concurrent use; callers serialize.
type Store struct {
	cfg      Config
	gen      uint64
	file     *os.File
	snapshot []byte   // loaded at Open; nil when none
	records  [][]byte // intact tail replayed at Open
	appends  int      // records appended since the last snapshot
}

// Open opens (or creates) the store directory, loads the newest
// snapshot, replays the matching log's intact prefix — truncating a
// torn tail in place — and deletes logs from older generations. A
// snapshot that fails its checksum is an error (bit rot on durable
// state needs operator attention), while log-tail corruption is the
// expected crash signature and only shortens the replayed prefix.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: empty dir")
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{cfg: cfg}

	snap, gen, err := readSnapshot(filepath.Join(cfg.Dir, "snapshot"))
	if err != nil {
		return nil, err
	}
	s.snapshot = snap
	s.gen = gen

	if err := s.dropStaleLogs(); err != nil {
		return nil, err
	}
	records, err := replayLog(s.logPath())
	if err != nil {
		return nil, err
	}
	s.records = records
	s.appends = len(records)

	f, err := os.OpenFile(s.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s.file = f
	return s, nil
}

func (s *Store) logPath() string {
	return filepath.Join(s.cfg.Dir, "wal-"+strconv.FormatUint(s.gen, 10))
}

// dropStaleLogs removes wal-* files from generations other than the
// snapshot's — leftovers of a crash inside WriteSnapshot's rotation.
func (s *Store) dropStaleLogs() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	keep := "wal-" + strconv.FormatUint(s.gen, 10)
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && name != keep {
			if err := os.Remove(filepath.Join(s.cfg.Dir, name)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Snapshot returns the snapshot payload loaded at Open (nil when the
// store had none). The slice is owned by the store's recovery state;
// callers must not modify it.
func (s *Store) Snapshot() []byte { return s.snapshot }

// Records returns the intact log tail replayed at Open, in append
// order. Slices are owned by the recovery state; callers must not
// modify them.
func (s *Store) Records() [][]byte { return s.records }

// Append frames one record and writes it to the log.
func (s *Store) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record size %d out of range", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.file.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := s.file.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if s.cfg.SyncEveryAppend {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
	}
	s.appends++
	return nil
}

// AppendsSinceSnapshot reports how many records the current log holds
// (recovered tail plus appends); owners compare it against
// SnapshotThreshold at their safe points.
func (s *Store) AppendsSinceSnapshot() int { return s.appends }

// SnapshotThreshold returns the automatic-checkpoint record count
// (0 when automatic checkpoints are disabled).
func (s *Store) SnapshotThreshold() int {
	if s.cfg.SnapshotEvery < 0 {
		return 0
	}
	return s.cfg.SnapshotEvery
}

// WriteSnapshot atomically replaces the snapshot with data and rotates
// the log to the next generation, so recovery cost stays proportional
// to the records since the last checkpoint.
func (s *Store) WriteSnapshot(data []byte) error {
	next := s.gen + 1
	tmp := filepath.Join(s.cfg.Dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	hdr := make([]byte, 0, snapHeader)
	hdr = append(hdr, snapMagic...)
	hdr = append(hdr, snapVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, next)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(data)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(data, crcTable))
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(data)
		if err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.cfg.Dir, "snapshot")); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}

	// The snapshot is durable; everything in the old log is folded in.
	// Rotate: sync+close the old log, start the new generation, drop
	// the old file. A crash anywhere here is recovered by Open
	// (missing new log = empty tail; surviving old log = stale, deleted).
	old, oldPath := s.file, s.logPath()
	s.gen = next
	f, err = os.OpenFile(s.logPath(), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	s.file = f
	_ = old.Close()
	_ = os.Remove(oldPath)
	s.appends = 0
	s.records = nil
	s.snapshot = nil
	return nil
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the log.
func (s *Store) Close() error {
	if s.file == nil {
		return nil
	}
	err := s.file.Sync()
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	s.file = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// readSnapshot loads and verifies a snapshot file; a missing file is
// (nil, 0, nil).
func readSnapshot(path string) ([]byte, uint64, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < snapHeader || string(raw[:4]) != snapMagic {
		return nil, 0, fmt.Errorf("wal: corrupt snapshot header in %s", path)
	}
	if raw[4] != snapVersion {
		return nil, 0, fmt.Errorf("wal: unsupported snapshot version %d in %s", raw[4], path)
	}
	gen := binary.LittleEndian.Uint64(raw[5:13])
	n := binary.LittleEndian.Uint32(raw[13:17])
	sum := binary.LittleEndian.Uint32(raw[17:21])
	payload := raw[snapHeader:]
	if uint64(len(payload)) != uint64(n) || crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("wal: snapshot checksum mismatch in %s", path)
	}
	return payload, gen, nil
}

// replayLog reads the intact record prefix of a log file and truncates
// a torn or corrupt tail in place. A missing file replays empty.
func replayLog(path string) ([][]byte, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var records [][]byte
	off := 0
	for {
		rec, next, ok := nextFrame(raw, off)
		if !ok {
			break
		}
		records = append(records, rec)
		off = next
	}
	if off < len(raw) {
		// Torn tail: cut the file back to the last intact frame so
		// future appends extend a clean log.
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return records, nil
}

// nextFrame decodes one frame at off; ok is false at EOF or on a
// short, oversized or checksum-failing frame.
func nextFrame(raw []byte, off int) (rec []byte, next int, ok bool) {
	if off+frameHeader > len(raw) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(raw[off : off+4]))
	sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
	if n == 0 || n > MaxRecordSize || off+frameHeader+n > len(raw) {
		return nil, off, false
	}
	payload := raw[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, off, false
	}
	return payload, off + frameHeader + n, true
}

// ReplayReader decodes frames from a stream without file access — the
// fuzz surface proving that arbitrary bytes replay a consistent prefix
// and never panic.
func ReplayReader(r io.Reader) ([][]byte, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var records [][]byte
	off := 0
	for {
		rec, next, ok := nextFrame(raw, off)
		if !ok {
			return records, nil
		}
		records = append(records, rec)
		off = next
	}
}

// AppendFrame frames payload as Append would and appends it to dst —
// for tests and tools that build log images without a Store.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}
