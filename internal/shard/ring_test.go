package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sensor.type-%04d", i)
	}
	return keys
}

func ownersOf(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			continue
		}
		out[k] = o
	}
	return out
}

func TestRingOwnershipTable(t *testing.T) {
	cases := []struct {
		name    string
		setup   func(r *Ring)
		key     string
		wantOK  bool
		members int
	}{
		{name: "empty ring has no owner", setup: func(r *Ring) {}, key: "traffic", wantOK: false, members: 0},
		{
			name:    "single member owns everything",
			setup:   func(r *Ring) { r.Add("fog1/d01-s01", 1) },
			key:     "traffic",
			wantOK:  true,
			members: 1,
		},
		{
			name: "re-add replaces weight instead of stacking",
			setup: func(r *Ring) {
				r.Add("a", 1)
				r.Add("a", 1)
				r.Add("a", 3)
			},
			key:     "traffic",
			wantOK:  true,
			members: 1,
		},
		{
			name: "remove absent member is a no-op",
			setup: func(r *Ring) {
				r.Add("a", 1)
				r.Remove("b")
			},
			key:     "traffic",
			wantOK:  true,
			members: 1,
		},
		{
			name: "empty id rejected",
			setup: func(r *Ring) {
				r.Add("", 1)
			},
			key:     "traffic",
			wantOK:  false,
			members: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(8)
			tc.setup(r)
			if got := r.Len(); got != tc.members {
				t.Fatalf("Len = %d, want %d", got, tc.members)
			}
			_, ok := r.Owner(tc.key)
			if ok != tc.wantOK {
				t.Fatalf("Owner ok = %v, want %v", ok, tc.wantOK)
			}
		})
	}

	t.Run("re-add with same weight keeps point count", func(t *testing.T) {
		r := NewRing(16)
		r.Add("a", 2)
		n := len(r.points)
		r.Add("a", 2)
		if len(r.points) != n {
			t.Fatalf("points grew from %d to %d on idempotent re-add", n, len(r.points))
		}
		if r.Weight("a") != 2 {
			t.Fatalf("Weight = %d, want 2", r.Weight("a"))
		}
	})
}

func TestRingDeterministicAndStable(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		r.Add("fog1/d01-s01", 1)
		r.Add("fog1/d01-s02", 1)
		r.Add("fog1/d01-s03", 2)
		return r
	}
	keys := ringKeys(500)
	a := ownersOf(build(), keys)
	b := ownersOf(build(), keys)
	for _, k := range keys {
		if a[k] != b[k] {
			t.Fatalf("owner of %q differs between identical rings: %q vs %q", k, a[k], b[k])
		}
	}
}

// TestRingRebalanceMinimalMovement asserts the consistent-hashing
// contract: adding one member only moves keys TO the new member, and
// removing it only moves its own keys — nothing shuffles between
// surviving members.
func TestRingRebalanceMinimalMovement(t *testing.T) {
	r := NewRing(128)
	for i := 1; i <= 5; i++ {
		r.Add(fmt.Sprintf("fog1/d01-s%02d", i), 1)
	}
	keys := ringKeys(2000)
	before := ownersOf(r, keys)

	const joiner = "fog1/d01-s06"
	r.Add(joiner, 1)
	after := ownersOf(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			if after[k] != joiner {
				t.Fatalf("key %q moved %q -> %q, not to the joiner", k, before[k], after[k])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("joiner received no keys")
	}
	// Expected share is 1/6; allow generous slack but catch a full
	// reshuffle.
	if moved > len(keys)/3 {
		t.Fatalf("join moved %d/%d keys; expected ~1/6", moved, len(keys))
	}

	r.Remove(joiner)
	restored := ownersOf(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("remove did not restore ownership of %q: %q vs %q", k, restored[k], before[k])
		}
	}
}

// TestRingSkewBound is the satellite acceptance bound: with 128
// virtual nodes the max/min owned-type ratio stays ≤ 1.3 across
// equal-weight members.
func TestRingSkewBound(t *testing.T) {
	for _, members := range []int{4, 8, 16} {
		t.Run(fmt.Sprintf("members=%d", members), func(t *testing.T) {
			r := NewRing(128)
			for i := 0; i < members; i++ {
				r.Add(fmt.Sprintf("fog1/d%02d-s%02d", i/8+1, i%8+1), 1)
			}
			counts := make(map[string]int, members)
			keys := ringKeys(20000)
			for _, k := range keys {
				o, _ := r.Owner(k)
				counts[o]++
			}
			if len(counts) != members {
				t.Fatalf("only %d of %d members own keys", len(counts), members)
			}
			min, max := len(keys), 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			skew := float64(max) / float64(min)
			if skew > 1.3 {
				t.Fatalf("ownership skew %.3f exceeds 1.3 (min=%d max=%d)", skew, min, max)
			}
		})
	}
}

// TestRingWeightBias asserts a weight-2 member owns roughly twice the
// share of a weight-1 member.
func TestRingWeightBias(t *testing.T) {
	r := NewRing(128)
	r.Add("small-a", 1)
	r.Add("small-b", 1)
	r.Add("big", 2)
	counts := make(map[string]int)
	keys := ringKeys(20000)
	for _, k := range keys {
		o, _ := r.Owner(k)
		counts[o]++
	}
	avgSmall := float64(counts["small-a"]+counts["small-b"]) / 2
	ratio := float64(counts["big"]) / avgSmall
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("weight-2 member owns %.2fx a weight-1 member; want ~2x (counts %v)", ratio, counts)
	}
}

func TestFNV32aMatchesReference(t *testing.T) {
	// Spot-check the 32-bit hash against known FNV-1a values so the
	// shared shard-selection hash never drifts.
	cases := map[string]uint32{
		"":    2166136261,
		"a":   0xe40c292c,
		"foo": 0xa9f37ed7,
	}
	for in, want := range cases {
		if got := FNV32a(in); got != want {
			t.Fatalf("FNV32a(%q) = %#x, want %#x", in, got, want)
		}
	}
}
