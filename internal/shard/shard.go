// Package shard provides the hash shared by the sharded structures
// on the concurrent ingest path (fognode pending buffers, the
// time-series store, the deduper), so shard selection stays
// consistent and is maintained in one place.
package shard

// FNV32a returns the 32-bit FNV-1a hash of s. Callers mask it with
// (shardCount - 1); shard counts are powers of two.
func FNV32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
