package shard

import (
	"sort"
	"strconv"
)

// FNV64a returns the 64-bit FNV-1a hash of s. The consistent-hash
// ring uses the 64-bit variant so virtual-node points spread over a
// larger space and collisions between vnode labels are negligible.
func FNV64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 finalizes a hash with the splitmix64 avalanche so ring
// points derived from similar labels ("id#1", "id#2", ...) scatter
// uniformly; raw FNV keeps nearby inputs on nearby points, which
// skews ownership far past the 1.3 bound.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringHash positions a label on the ring.
func ringHash(s string) uint64 { return mix64(FNV64a(s)) }

// DefaultVirtualNodes is the ring's default vnode multiplier. 128
// points per unit of weight keeps the max/min ownership skew under
// 1.3 for realistic member counts (asserted in ring_test.go).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes and integer
// member weights. A member with weight w owns w * vnodes points on
// the ring; Owner(key) returns the member whose point follows the
// key's hash clockwise. Ring is not safe for concurrent use; callers
// (placement.Ownership, core) guard it.
type Ring struct {
	vnodes  int
	weights map[string]int
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring. vnodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, weights: make(map[string]int)}
}

// Add inserts a member with the given weight (minimum 1). Adding an
// existing member replaces its weight; it never stacks points, so a
// member listed twice by the caller keeps a single declared weight.
func (r *Ring) Add(id string, weight int) {
	if id == "" {
		return
	}
	if weight < 1 {
		weight = 1
	}
	if old, ok := r.weights[id]; ok {
		if old == weight {
			return
		}
		r.removePoints(id)
	}
	r.weights[id] = weight
	n := weight * r.vnodes
	// Stratified placement: point i lands in stratum [i/n, (i+1)/n)
	// of the ring, jittered by the label hash. Each member's points
	// are spread evenly instead of independently at random, which
	// keeps the max/min ownership skew within the 1.3 bound at 128
	// vnodes (independent points need ~4x more to match).
	step := ^uint64(0)/uint64(n) + 1
	for i := 0; i < n; i++ {
		jitter := ringHash(id + "#" + strconv.Itoa(i))
		if step != 0 {
			jitter %= step
		}
		r.points = append(r.points, ringPoint{hash: step*uint64(i) + jitter, node: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a member and all its points. Removing an absent
// member is a no-op.
func (r *Ring) Remove(id string) {
	if _, ok := r.weights[id]; !ok {
		return
	}
	delete(r.weights, id)
	r.removePoints(id)
}

func (r *Ring) removePoints(id string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// ownerProbes is the multi-probe count: Owner hashes the key to
// ownerProbes ring positions and picks the point with the smallest
// clockwise distance. Multi-probe lookup (Appleton & O'Reilly,
// "Multi-probe consistent hashing") tightens the ownership skew that
// single-probe rings suffer at moderate vnode counts, and it keeps
// the minimal-movement property: a join can only steal a key by
// shortening some probe's distance, which means the stolen key lands
// on the joiner.
const ownerProbes = 8

// Owner returns the member owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := FNV64a(key)
	best := ""
	var bestDist uint64
	for p := 0; p < ownerProbes; p++ {
		probe := mix64(h + uint64(p)*0x9e3779b97f4a7c15)
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= probe })
		if i == len(r.points) {
			i = 0 // wrap: the first point clockwise from the top
		}
		dist := r.points[i].hash - probe // wraps modulo 2^64
		if best == "" || dist < bestDist {
			best, bestDist = r.points[i].node, dist
		}
	}
	return best, true
}

// Weight returns a member's weight (0 when absent).
func (r *Ring) Weight(id string) int { return r.weights[id] }

// Members returns the member IDs, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.weights))
	for id := range r.weights {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.weights) }
