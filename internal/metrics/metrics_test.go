package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 32000 {
		t.Errorf("Value = %d, want 32000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Value = %d, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	if got := h.Quantile(0.5); got != time.Millisecond {
		t.Errorf("p50 = %v, want 1ms", got)
	}
	if got := h.Quantile(0.99); got != time.Second {
		t.Errorf("p99 = %v, want 1s", got)
	}
	if got := h.Max(); got != time.Second {
		t.Errorf("Max = %v, want 1s", got)
	}
	mean := h.Mean()
	if mean < 100*time.Millisecond || mean > 110*time.Millisecond {
		t.Errorf("Mean = %v, want ~100.9ms", mean)
	}
	// q > 1 clamps, huge value lands in +Inf bucket.
	h.Observe(time.Hour)
	if got := h.Quantile(2); got != time.Hour {
		t.Errorf("clamped quantile = %v, want max", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(time.Millisecond)
	if got := r.Counter("a").Value(); got != 2 {
		t.Errorf("counter a = %d, want 2 (must return same instance)", got)
	}
	snap := r.Snapshot()
	for _, want := range []string{"counter a = 2", "gauge g = 3", "histogram h"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestTrafficMatrix(t *testing.T) {
	m := NewTrafficMatrix()
	m.Record(HopEdgeToFog1, "energy", 100)
	m.Record(HopEdgeToFog1, "energy", 50)
	m.Record(HopEdgeToFog1, "noise", 25)
	m.Record(HopFog1ToFog2, "energy", 75)
	m.Record(HopEdgeToFog1, "energy", -5) // ignored

	if got := m.Bytes(HopEdgeToFog1); got != 175 {
		t.Errorf("edge->fog1 bytes = %d, want 175", got)
	}
	if got := m.BytesByClass(HopEdgeToFog1, "energy"); got != 150 {
		t.Errorf("edge->fog1 energy = %d, want 150", got)
	}
	if got := m.Messages(HopEdgeToFog1); got != 3 {
		t.Errorf("edge->fog1 msgs = %d, want 3", got)
	}
	if got := m.Bytes(HopFog2ToCloud); got != 0 {
		t.Errorf("fog2->cloud bytes = %d, want 0", got)
	}
	classes := m.Classes()
	if len(classes) != 2 || classes[0] != "energy" || classes[1] != "noise" {
		t.Errorf("Classes = %v", classes)
	}
	s := m.String()
	if !strings.Contains(s, "edge->fog1") || !strings.Contains(s, "fog1->fog2") {
		t.Errorf("String missing hops:\n%s", s)
	}
	m.Reset()
	if m.Bytes(HopEdgeToFog1) != 0 || len(m.Classes()) != 0 {
		t.Error("Reset did not clear matrix")
	}
}

func TestTrafficMatrixConcurrent(t *testing.T) {
	m := NewTrafficMatrix()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Record(HopEdgeToCloud, "parking", 10)
			}
		}()
	}
	wg.Wait()
	if got := m.Bytes(HopEdgeToCloud); got != 80000 {
		t.Errorf("bytes = %d, want 80000", got)
	}
}

func TestHopStrings(t *testing.T) {
	for _, h := range Hops() {
		if strings.HasPrefix(h.String(), "hop(") {
			t.Errorf("hop %d has no name", int(h))
		}
	}
	if Hop(99).String() != "hop(99)" {
		t.Error("unknown hop should render numerically")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	prop := func(durations []uint32, qa, qb uint8) bool {
		h := NewHistogram(DefaultLatencyBounds())
		for _, d := range durations {
			h.Observe(time.Duration(d) * time.Microsecond)
		}
		q1 := float64(qa%100+1) / 100
		q2 := float64(qb%100+1) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return h.Quantile(q1) <= h.Quantile(q2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMaxDominatesProperty(t *testing.T) {
	prop := func(durations []uint32) bool {
		h := NewHistogram(DefaultLatencyBounds())
		var max time.Duration
		for _, d := range durations {
			v := time.Duration(d) * time.Microsecond
			h.Observe(v)
			if v > max {
				max = v
			}
		}
		return h.Max() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMessagesByClass(t *testing.T) {
	m := NewTrafficMatrix()
	m.Record(HopFog1ToFog2, "urban", 10)
	m.Record(HopFog1ToFog2, "urban", 10)
	m.Record(HopFog1ToFog2, "energy", 10)
	if got := m.MessagesByClass(HopFog1ToFog2, "urban"); got != 2 {
		t.Errorf("urban messages = %d, want 2", got)
	}
	if got := m.MessagesByClass(HopFog1ToFog2, "noise"); got != 0 {
		t.Errorf("noise messages = %d, want 0", got)
	}
}
