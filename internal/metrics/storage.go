package metrics

// Storage metric names. Every tiered-store instance registers this
// family under its node prefix ("<node id>." + name), so one shared
// registry can carry the whole hierarchy and a per-node registry
// (the f2cd / citysim -live deployment shape) exposes them through
// the same OpMetrics scrape `f2cctl metrics` reads.
const (
	// StorageSegments gauges the live (manifest-listed) segment files.
	StorageSegments = "storage.segments"
	// StorageSegmentBytes gauges the on-disk bytes of live segments.
	StorageSegmentBytes = "storage.segment_bytes"
	// StorageMemtableBytes gauges the approximate in-RAM memtable
	// footprint awaiting flush.
	StorageMemtableBytes = "storage.memtable_bytes"
	// StorageCompactions counts completed compaction merges.
	StorageCompactions = "storage.compactions"
	// StorageExpiredSegments counts whole segments dropped by
	// retention.
	StorageExpiredSegments = "storage.expired_segments"
)

// StorageMetrics bundles one store instance's gauges and counters.
// The zero value is not usable; obtain one from Registry.Storage.
type StorageMetrics struct {
	Segments        *Gauge
	SegmentBytes    *Gauge
	MemtableBytes   *Gauge
	Compactions     *Counter
	ExpiredSegments *Counter
}

// Storage registers (or reuses) the storage metric family under the
// given instance prefix, typically "<node id>.".
func (r *Registry) Storage(prefix string) *StorageMetrics {
	return &StorageMetrics{
		Segments:        r.Gauge(prefix + StorageSegments),
		SegmentBytes:    r.Gauge(prefix + StorageSegmentBytes),
		MemtableBytes:   r.Gauge(prefix + StorageMemtableBytes),
		Compactions:     r.Counter(prefix + StorageCompactions),
		ExpiredSegments: r.Counter(prefix + StorageExpiredSegments),
	}
}
