// Package metrics provides the lightweight instrumentation substrate
// used across the F2C system: counters, gauges, fixed-bucket latency
// histograms, and the per-hop network-traffic matrix that the paper's
// evaluation is built on.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter, safe for
// concurrent use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable 64-bit value, safe for concurrent use. The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records durations into logarithmic buckets. It is safe for
// concurrent use. Construct with NewHistogram.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
	max    atomic.Int64
}

// DefaultLatencyBounds covers 100µs .. ~100s in roughly x3 steps,
// suitable for both fog-local (sub-ms) and WAN (tens of ms) paths.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond,
		300 * time.Microsecond,
		time.Millisecond,
		3 * time.Millisecond,
		10 * time.Millisecond,
		30 * time.Millisecond,
		100 * time.Millisecond,
		300 * time.Millisecond,
		time.Second,
		3 * time.Second,
		10 * time.Second,
		30 * time.Second,
		100 * time.Second,
	}
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds []time.Duration) *Histogram {
	bs := make([]time.Duration, len(bounds))
	copy(bs, bounds)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1)
// based on bucket boundaries. Returns Max for the +Inf bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with default latency bounds,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(DefaultLatencyBounds())
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders all metrics as a sorted, human-readable block,
// suitable for status endpoints and test assertions.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: n=%d mean=%v p99<=%v max=%v",
			name, h.Count(), h.Mean(), h.Quantile(0.99), h.Max()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
