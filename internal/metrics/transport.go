package metrics

import "time"

// ClassStats instruments one multiplexed traffic class of a socket
// transport (tcpnet): its send/receive volume, the flow-control
// window's current queue depth, backpressure rejections, and the
// round-trip latency distribution. Classes are independent by design —
// the isolation the per-class numbers exist to prove.
type ClassStats struct {
	// FramesSent / FramesReceived count request frames moved on this
	// class (client: sent; server: received).
	FramesSent     *Counter
	FramesReceived *Counter
	// InflightBytes is the flow-control window usage: payload bytes
	// sent and not yet acknowledged.
	InflightBytes *Gauge
	// QueueDepth is the number of requests currently in flight
	// (client: awaiting replies; server: running handlers).
	QueueDepth *Gauge
	// Backpressure counts sends rejected because the class window was
	// exhausted (surfaced to callers as transport.ErrBackpressure).
	Backpressure *Counter
	// RTT is the request round-trip latency distribution.
	RTT *Histogram
}

// TransportStats bundles the connection- and frame-level metrics of a
// socket transport under a common prefix, plus per-class stats for
// each multiplexed traffic class. Construct with NewTransportStats.
type TransportStats struct {
	// ConnDials counts outbound connection attempts (client) or
	// accepted connections (server).
	ConnDials *Counter
	// ConnReconnects counts dials that replaced a broken connection.
	ConnReconnects *Counter
	// ConnErrors counts connections torn down by an I/O or protocol
	// error.
	ConnErrors *Counter
	// ConnActive is the number of currently open connections.
	ConnActive *Gauge
	// FramesSent / FramesReceived count all frames either way
	// (requests and replies).
	FramesSent     *Counter
	FramesReceived *Counter
	// FrameBytesSent / FrameBytesReceived count framed wire bytes.
	FrameBytesSent     *Counter
	FrameBytesReceived *Counter
	// FramesOversized counts frames rejected for exceeding the
	// configured maximum frame size.
	FramesOversized *Counter

	classes map[string]*ClassStats
}

// NewTransportStats creates (or re-binds, counters are shared by name)
// the transport metric set under prefix — conventionally "transport."
// for a client and "transport.server." for a server — with one
// ClassStats per named traffic class.
func NewTransportStats(r *Registry, prefix string, classNames ...string) *TransportStats {
	s := &TransportStats{
		ConnDials:          r.Counter(prefix + "conn_dials"),
		ConnReconnects:     r.Counter(prefix + "conn_reconnects"),
		ConnErrors:         r.Counter(prefix + "conn_errors"),
		ConnActive:         r.Gauge(prefix + "conn_active"),
		FramesSent:         r.Counter(prefix + "frames_sent"),
		FramesReceived:     r.Counter(prefix + "frames_received"),
		FrameBytesSent:     r.Counter(prefix + "frames_bytes_sent"),
		FrameBytesReceived: r.Counter(prefix + "frames_bytes_received"),
		FramesOversized:    r.Counter(prefix + "frames_oversized"),
		classes:            make(map[string]*ClassStats, len(classNames)),
	}
	for _, name := range classNames {
		cp := prefix + "class." + name + "."
		s.classes[name] = &ClassStats{
			FramesSent:     r.Counter(cp + "frames_sent"),
			FramesReceived: r.Counter(cp + "frames_received"),
			InflightBytes:  r.Gauge(cp + "inflight_bytes"),
			QueueDepth:     r.Gauge(cp + "queue_depth"),
			Backpressure:   r.Counter(cp + "backpressure"),
			RTT:            r.Histogram(cp + "rtt"),
		}
	}
	return s
}

// Class returns the stats of the named traffic class (nil when the
// class was not declared at construction).
func (s *TransportStats) Class(name string) *ClassStats { return s.classes[name] }

// HistogramExport is the JSON-friendly summary of one histogram.
type HistogramExport struct {
	Count  int64   `json:"count"`
	MeanNs int64   `json:"meanNs"`
	P50Ns  int64   `json:"p50Ns"`
	P99Ns  int64   `json:"p99Ns"`
	MaxNs  int64   `json:"maxNs"`
	MeanMs float64 `json:"meanMs"`
	P99Ms  float64 `json:"p99Ms"`
}

// RegistryExport is the machine-readable snapshot of a Registry,
// served by the nodes' metrics control endpoint so load harnesses can
// scrape per-tier counters over the message plane.
type RegistryExport struct {
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]int64           `json:"gauges"`
	Histograms map[string]HistogramExport `json:"histograms"`
}

// Export snapshots all metrics into a JSON-friendly document.
func (r *Registry) Export() RegistryExport {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RegistryExport{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramExport, len(r.histograms)),
	}
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		out.Histograms[name] = HistogramExport{
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			P50Ns:  int64(h.Quantile(0.5)),
			P99Ns:  int64(h.Quantile(0.99)),
			MaxNs:  int64(h.Max()),
			MeanMs: float64(h.Mean()) / float64(time.Millisecond),
			P99Ms:  float64(h.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	return out
}
