package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Hop identifies a network segment in the F2C hierarchy. The paper's
// evaluation counts bytes crossing each of these segments.
type Hop int

const (
	// HopEdgeToFog1 is sensor devices -> fog layer 1 (local links).
	HopEdgeToFog1 Hop = iota + 1
	// HopFog1ToFog2 is fog layer 1 -> fog layer 2 (metro links).
	HopFog1ToFog2
	// HopFog2ToCloud is fog layer 2 -> cloud (WAN links).
	HopFog2ToCloud
	// HopEdgeToCloud is the centralized baseline's direct
	// sensor -> cloud path (3G/4G in the paper's Fig. 3 model).
	HopEdgeToCloud
	// HopFog1ToFog1 is neighbor traffic between fog layer-1 nodes
	// (the paper's §IV.C neighbor data-access option).
	HopFog1ToFog1
	// HopDownlink is any layer answering a consumer read (cloud or
	// fog serving a service/application).
	HopDownlink
)

// Hops lists all hops in display order.
func Hops() []Hop {
	return []Hop{
		HopEdgeToFog1, HopFog1ToFog2, HopFog2ToCloud,
		HopEdgeToCloud, HopFog1ToFog1, HopDownlink,
	}
}

// String implements fmt.Stringer.
func (h Hop) String() string {
	switch h {
	case HopEdgeToFog1:
		return "edge->fog1"
	case HopFog1ToFog2:
		return "fog1->fog2"
	case HopFog2ToCloud:
		return "fog2->cloud"
	case HopEdgeToCloud:
		return "edge->cloud"
	case HopFog1ToFog1:
		return "fog1<->fog1"
	case HopDownlink:
		return "downlink"
	default:
		return fmt.Sprintf("hop(%d)", int(h))
	}
}

// TrafficMatrix accumulates bytes and message counts per hop and per
// traffic class (usually the sensor category name). Safe for
// concurrent use.
type TrafficMatrix struct {
	mu    sync.Mutex
	bytes map[Hop]map[string]int64
	msgs  map[Hop]map[string]int64
}

// NewTrafficMatrix creates an empty matrix.
func NewTrafficMatrix() *TrafficMatrix {
	return &TrafficMatrix{
		bytes: make(map[Hop]map[string]int64),
		msgs:  make(map[Hop]map[string]int64),
	}
}

// Record accounts one message of n bytes for class on hop.
func (m *TrafficMatrix) Record(hop Hop, class string, n int64) {
	if n < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes[hop] == nil {
		m.bytes[hop] = make(map[string]int64)
		m.msgs[hop] = make(map[string]int64)
	}
	m.bytes[hop][class] += n
	m.msgs[hop][class]++
}

// Bytes returns total bytes recorded for the hop across all classes.
func (m *TrafficMatrix) Bytes(hop Hop) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.bytes[hop] {
		total += n
	}
	return total
}

// BytesByClass returns bytes recorded for one class on one hop.
func (m *TrafficMatrix) BytesByClass(hop Hop, class string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[hop][class]
}

// MessagesByClass returns messages recorded for one class on one hop.
func (m *TrafficMatrix) MessagesByClass(hop Hop, class string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.msgs[hop][class]
}

// Messages returns total messages recorded for the hop.
func (m *TrafficMatrix) Messages(hop Hop) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.msgs[hop] {
		total += n
	}
	return total
}

// Classes returns the sorted set of classes seen on any hop.
func (m *TrafficMatrix) Classes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := make(map[string]struct{})
	for _, byClass := range m.bytes {
		for class := range byClass {
			set[class] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for class := range set {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// Reset clears all recorded traffic.
func (m *TrafficMatrix) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = make(map[Hop]map[string]int64)
	m.msgs = make(map[Hop]map[string]int64)
}

// String renders the matrix as a table of hop x class byte counts.
func (m *TrafficMatrix) String() string {
	classes := m.Classes()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %10s", "hop", "bytes", "msgs")
	for _, class := range classes {
		fmt.Fprintf(&b, " %14s", class)
	}
	b.WriteByte('\n')
	for _, hop := range Hops() {
		if m.Messages(hop) == 0 && m.Bytes(hop) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %14d %10d", hop, m.Bytes(hop), m.Messages(hop))
		for _, class := range classes {
			fmt.Fprintf(&b, " %14d", m.BytesByClass(hop, class))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
