package baseline

import (
	"context"
	"testing"
	"time"

	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/sim"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func newSystem(t *testing.T, m *metrics.TrafficMatrix) *System {
	t.Helper()
	s, err := NewSystem(Config{Clock: sim.NewVirtualClock(t0), Matrix: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func batch(at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: "edge/7", TypeName: "parking_spot", Category: model.CategoryParking, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: "edge/7/parking/" + string(rune('a'+i)), TypeName: "parking_spot",
			Category: model.CategoryParking, Time: at, Value: v, Unit: "occ",
		})
	}
	return b
}

func TestCollectAndQuery(t *testing.T) {
	m := metrics.NewTrafficMatrix()
	s := newSystem(t, m)
	ctx := context.Background()
	if err := s.Collect(ctx, batch(t0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Cloud().Archive().Len(); got != 1 {
		t.Errorf("archive len = %d", got)
	}
	// Traffic crossed the edge->cloud hop, tagged by category.
	if got := m.BytesByClass(metrics.HopEdgeToCloud, "parking"); got <= 0 {
		t.Error("no edge->cloud traffic accounted")
	}

	r, err := s.Latest(ctx, "client/1", "edge/7/parking/a")
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 1 {
		t.Errorf("latest = %+v", r)
	}

	hist, err := s.Historical(ctx, "client/1", "parking_spot", t0.Add(-time.Hour), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Errorf("historical = %d readings", len(hist))
	}
}

func TestLatestNotFound(t *testing.T) {
	s := newSystem(t, nil)
	_, err := s.Latest(context.Background(), "client/1", "ghost")
	if err == nil || !IsNotFound(err) {
		t.Errorf("err = %v, want not-found", err)
	}
}

func TestNoAggregationBeforeCloud(t *testing.T) {
	m := metrics.NewTrafficMatrix()
	s := newSystem(t, m)
	ctx := context.Background()
	// Send the same duplicate-heavy batch twice: the baseline ships
	// every byte both times.
	first := batch(t0, 1, 1)
	second := batch(t0.Add(time.Minute), 1, 1)
	if err := s.Collect(ctx, first); err != nil {
		t.Fatal(err)
	}
	afterFirst := m.Bytes(metrics.HopEdgeToCloud)
	if err := s.Collect(ctx, second); err != nil {
		t.Fatal(err)
	}
	afterSecond := m.Bytes(metrics.HopEdgeToCloud)
	if afterSecond < 2*afterFirst-8 {
		t.Errorf("duplicate traffic was reduced (%d then %d): baseline must not aggregate", afterFirst, afterSecond)
	}
}

func TestLatencyEmulatedWANRead(t *testing.T) {
	s, err := NewSystem(Config{Clock: sim.NewVirtualClock(t0), Emulate: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Collect(ctx, batch(t0, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Latest(ctx, "client/1", "edge/7/parking/a"); err != nil {
		t.Fatal(err)
	}
	// CellularLink latency is 60ms one-way: a read pays >= 120ms.
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Errorf("WAN read took %v, want >= 120ms", elapsed)
	}
}
