// Package baseline implements the centralized cloud architecture the
// paper compares against (§III, Fig. 3): four layers — physical
// (sensors, supplied by the caller), network (a simulated 3G/4G
// cellular path), cloud (collection + processing + storage), and
// service (query interface). Every sensor transaction crosses the WAN
// in full; no aggregation happens before the cloud.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cloud"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/query"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

// Config configures the centralized system.
type Config struct {
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Matrix records edge->cloud traffic; nil disables accounting.
	Matrix *metrics.TrafficMatrix
	// Link overrides the cellular uplink profile (zero value uses
	// transport.CellularLink).
	Link transport.LinkProfile
	// Emulate enables wall-clock latency emulation for latency
	// benchmarks.
	Emulate bool
	// Seed drives deterministic link behaviour.
	Seed int64
}

// System is the assembled centralized baseline.
type System struct {
	net   *transport.SimNetwork
	cloud *cloud.Node
}

// CloudID is the baseline's single collection endpoint.
const CloudID = "cloud"

// NewSystem builds the baseline.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		cfg.Clock = sim.WallClock{}
	}
	link := cfg.Link
	if link == (transport.LinkProfile{}) {
		link = transport.CellularLink
	}
	cl, err := cloud.New(cloud.Config{ID: CloudID, City: "baseline", Clock: cfg.Clock})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	opts := []transport.SimOption{
		transport.WithSeed(cfg.Seed),
		transport.WithDefaultLink(link),
		transport.WithLatencyEmulation(cfg.Emulate),
	}
	if cfg.Matrix != nil {
		opts = append(opts, transport.WithTrafficMatrix(cfg.Matrix, func(from, to string) metrics.Hop {
			if to == CloudID {
				return metrics.HopEdgeToCloud
			}
			return metrics.HopDownlink
		}))
	}
	net := transport.NewSimNetwork(opts...)
	net.Register(CloudID, cl)
	return &System{net: net, cloud: cl}, nil
}

// Collect sends a sensor batch over the cellular network to the cloud
// uncompressed and unfiltered — the centralized model applies its
// optimizations only after the data has crossed the network.
func (s *System) Collect(ctx context.Context, b *model.Batch) error {
	payload, err := protocol.EncodeBatchPayload(b, aggregate.CodecNone)
	if err != nil {
		return fmt.Errorf("baseline collect: %w", err)
	}
	_, err = s.net.Send(ctx, transport.Message{
		From:    b.NodeID,
		To:      CloudID,
		Kind:    transport.KindBatch,
		Class:   b.Category.String(),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("baseline collect: %w", err)
	}
	return nil
}

// client builds a paged query client acting for one caller endpoint.
func (s *System) client(clientID string) *query.Engine {
	eng, err := query.New(query.Config{
		Self: clientID, Transport: s.net, CloudID: CloudID,
	})
	if err != nil {
		panic(fmt.Sprintf("baseline: query client: %v", err)) // only a nil transport can fail
	}
	return eng
}

// Latest reads a sensor's newest value from the cloud over the WAN —
// the paper's centralized real-time access, paying the remote round
// trip.
func (s *System) Latest(ctx context.Context, clientID, sensorID string) (model.Reading, error) {
	r, ok, err := s.client(clientID).LatestFrom(ctx, CloudID, sensorID)
	if err != nil {
		return model.Reading{}, fmt.Errorf("baseline latest: %w", err)
	}
	if !ok {
		return model.Reading{}, fmt.Errorf("baseline latest: sensor %q: %w", sensorID, errNotFound)
	}
	return r, nil
}

var errNotFound = errors.New("not found")

// IsNotFound reports whether err is a missing-sensor error.
func IsNotFound(err error) bool { return errors.Is(err, errNotFound) }

// Historical reads a type range from the cloud, streaming the scan in
// bounded pages.
func (s *System) Historical(ctx context.Context, clientID, typeName string, from, to time.Time) ([]model.Reading, error) {
	readings, err := s.client(clientID).RangeFrom(ctx, CloudID, typeName, from, to)
	if err != nil {
		return nil, fmt.Errorf("baseline historical: %w", err)
	}
	return readings, nil
}

// Cloud exposes the baseline's cloud node.
func (s *System) Cloud() *cloud.Node { return s.cloud }

// Network exposes the simulated network (for latency inspection).
func (s *System) Network() *transport.SimNetwork { return s.net }
