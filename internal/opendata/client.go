// Package opendata is the consumer-side SDK for the cloud's
// data-dissemination interface: a typed HTTP client civic applications
// use to read the published smart-city data (categories, days,
// readings, windowed summaries).
package opendata

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
)

// ErrForbidden is returned for types the city does not publish
// (privacy-restricted data).
var ErrForbidden = errors.New("opendata: type is not public open data")

// CategoryInfo is one entry of the categories listing.
type CategoryInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
}

// Client talks to one open-data endpoint.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the base URL ("http://host:port").
func NewClient(baseURL string, timeout time.Duration) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("opendata: empty base URL")
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: timeout},
	}, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("opendata: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("opendata: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("opendata: read body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusForbidden:
		return fmt.Errorf("%w: %s", ErrForbidden, strings.TrimSpace(string(body)))
	default:
		return fmt.Errorf("opendata: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("opendata: decode %s: %w", path, err)
	}
	return nil
}

// Categories lists the published categories with record counts.
func (c *Client) Categories(ctx context.Context) ([]CategoryInfo, error) {
	var out []CategoryInfo
	if err := c.get(ctx, "/opendata/v1/categories", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Days lists the UTC days with archived data.
func (c *Client) Days(ctx context.Context) ([]string, error) {
	var out []string
	if err := c.get(ctx, "/opendata/v1/days", &out); err != nil {
		return nil, err
	}
	return out, nil
}

func rangeQuery(from, to time.Time) string {
	q := url.Values{}
	if !from.IsZero() {
		q.Set("fromUnixNano", strconv.FormatInt(from.UnixNano(), 10))
	}
	if !to.IsZero() {
		q.Set("toUnixNano", strconv.FormatInt(to.UnixNano(), 10))
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// Readings fetches published readings of a type in [from, to]; zero
// times mean unbounded.
func (c *Client) Readings(ctx context.Context, typeName string, from, to time.Time) ([]model.Reading, error) {
	var out []model.Reading
	path := "/opendata/v1/types/" + url.PathEscape(typeName) + "/readings" + rangeQuery(from, to)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary fetches windowed aggregates of a type in [from, to].
func (c *Client) Summary(ctx context.Context, typeName string, from, to time.Time, window time.Duration) ([]aggregate.WindowSummary, error) {
	if window <= 0 {
		return nil, fmt.Errorf("opendata: non-positive window %v", window)
	}
	q := rangeQuery(from, to)
	sep := "?"
	if q != "" {
		sep = "&"
	}
	path := "/opendata/v1/types/" + url.PathEscape(typeName) + "/summary" + q +
		sep + "windowSeconds=" + strconv.FormatInt(int64(window/time.Second), 10)
	var out []aggregate.WindowSummary
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}
