package opendata

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"f2c/internal/cloud"
	"f2c/internal/model"
	"f2c/internal/sim"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func server(t *testing.T) (*cloud.Node, *httptest.Server) {
	t.Helper()
	cl, err := cloud.New(cloud.Config{ID: "cloud", City: "bcn", Clock: sim.NewVirtualClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cl.OpenDataHandler())
	t.Cleanup(srv.Close)
	return cl, srv
}

func populate(t *testing.T, cl *cloud.Node) {
	t.Helper()
	for i := 0; i < 4; i++ {
		at := t0.Add(time.Duration(i*30) * time.Minute)
		b := &model.Batch{
			NodeID: "fog2/d01", TypeName: "weather", Category: model.CategoryUrban, Collected: at,
			Readings: []model.Reading{{
				SensorID: "w1", TypeName: "weather", Category: model.CategoryUrban,
				Time: at, Value: float64(1000 + i), Unit: "hPa",
			}},
		}
		if err := cl.Preserve(b, "fog2/d01"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientEndToEnd(t *testing.T) {
	cl, srv := server(t)
	populate(t, cl)
	c, err := NewClient(srv.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cats, err := c.Categories(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 5 {
		t.Errorf("categories = %d", len(cats))
	}

	days, err := c.Days(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || days[0] != "2017-06-01" {
		t.Errorf("days = %v", days)
	}

	readings, err := c.Readings(ctx, "weather", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 3 { // 0, 30, 60 minutes
		t.Errorf("readings = %d, want 3", len(readings))
	}

	// Unbounded range.
	readings, err = c.Readings(ctx, "weather", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 4 {
		t.Errorf("unbounded readings = %d, want 4", len(readings))
	}

	windows, err := c.Summary(ctx, "weather", t0, t0.Add(2*time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 || windows[0].Count != 2 {
		t.Errorf("windows = %+v", windows)
	}
}

func TestClientForbidden(t *testing.T) {
	_, srv := server(t)
	c, err := NewClient(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Readings(context.Background(), "people_flow", time.Time{}, time.Time{})
	if !errors.Is(err, ErrForbidden) {
		t.Errorf("err = %v, want ErrForbidden", err)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("", time.Second); err == nil {
		t.Error("empty base URL must fail")
	}
	c, err := NewClient("http://127.0.0.1:0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Summary(context.Background(), "weather", time.Time{}, time.Time{}, 0); err == nil {
		t.Error("zero window must fail")
	}
	// Unreachable server surfaces a transport error.
	if _, err := c.Days(context.Background()); err == nil {
		t.Error("unreachable server must fail")
	}
}

func TestClientBadStatus(t *testing.T) {
	_, srv := server(t)
	c, err := NewClient(srv.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A bogus path under the handler returns 404.
	if err := c.get(context.Background(), "/opendata/v1/nope", &struct{}{}); err == nil {
		t.Error("404 must fail")
	}
}
