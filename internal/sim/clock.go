// Package sim provides the deterministic discrete-event simulation
// substrate used to run a full day of city-scale sensor traffic in
// milliseconds: a virtual clock abstraction and an event engine.
//
// The paper's evaluation estimates per-day network volumes; simulating
// each of the ~176 million daily sensor transactions individually is
// unnecessary, so the engine operates at whatever granularity the
// caller schedules (the core system schedules one event per fog-node x
// sensor-type x collection-interval).
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time so the same system code runs against the wall
// clock in daemons and against a virtual clock in simulations/tests.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// WallClock is a Clock backed by time.Now.
type WallClock struct{}

var _ Clock = WallClock{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced Clock. The zero value is not
// usable; construct with NewVirtualClock. It is safe for concurrent
// use.
type VirtualClock struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtualClock returns a virtual clock starting at the given epoch.
func NewVirtualClock(epoch time.Time) *VirtualClock {
	return &VirtualClock{now: epoch}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are
// ignored: simulated time never goes backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock to t if t is later than the current
// instant.
func (c *VirtualClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}
