package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", c.Now(), epoch)
	}
	c.Advance(5 * time.Second)
	if want := epoch.Add(5 * time.Second); !c.Now().Equal(want) {
		t.Errorf("after Advance: %v, want %v", c.Now(), want)
	}
	c.Advance(-time.Hour)
	if want := epoch.Add(5 * time.Second); !c.Now().Equal(want) {
		t.Error("negative Advance must be a no-op")
	}
	c.AdvanceTo(epoch) // in the past
	if want := epoch.Add(5 * time.Second); !c.Now().Equal(want) {
		t.Error("AdvanceTo in the past must be a no-op")
	}
	c.AdvanceTo(epoch.Add(time.Minute))
	if want := epoch.Add(time.Minute); !c.Now().Equal(want) {
		t.Errorf("AdvanceTo: %v, want %v", c.Now(), want)
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("WallClock.Now %v outside [%v, %v]", got, before, after)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(epoch)
	var order []string
	add := func(name string) func(time.Time) {
		return func(time.Time) { order = append(order, name) }
	}
	if err := e.Schedule(epoch.Add(3*time.Second), "c", add("c")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(epoch.Add(1*time.Second), "a", add("a")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(epoch.Add(2*time.Second), "b", add("b")); err != nil {
		t.Fatal(err)
	}
	// Same-instant events must run FIFO.
	if err := e.Schedule(epoch.Add(2*time.Second), "b2", add("b2")); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "b2", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Processed != 4 {
		t.Errorf("Processed = %d, want 4", e.Processed)
	}
}

func TestEngineHorizonExclusive(t *testing.T) {
	e := NewEngine(epoch)
	ran := 0
	horizon := epoch.Add(10 * time.Second)
	_ = e.Schedule(epoch.Add(9*time.Second), "in", func(time.Time) { ran++ })
	_ = e.Schedule(horizon, "at", func(time.Time) { ran++ })
	_ = e.Schedule(horizon.Add(time.Second), "past", func(time.Time) { ran++ })
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (horizon is exclusive)", ran)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("after Drain ran = %d, want 3", ran)
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	e := NewEngine(epoch)
	e.Clock().Advance(time.Minute)
	var at time.Time
	_ = e.Schedule(epoch, "past", func(now time.Time) { at = now })
	if err := e.Run(epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !at.Equal(epoch.Add(time.Minute)) {
		t.Errorf("past event ran at %v, want %v", at, epoch.Add(time.Minute))
	}
}

func TestEngineScheduleEvery(t *testing.T) {
	e := NewEngine(epoch)
	var fires []time.Time
	horizon := epoch.Add(50 * time.Second)
	err := e.ScheduleEvery(epoch.Add(5*time.Second), 10*time.Second, horizon, "tick",
		func(now time.Time) { fires = append(fires, now) })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	// 5, 15, 25, 35, 45 => 5 firings.
	if len(fires) != 5 {
		t.Fatalf("fired %d times, want 5 (%v)", len(fires), fires)
	}
	for i, f := range fires {
		want := epoch.Add(time.Duration(5+10*i) * time.Second)
		if !f.Equal(want) {
			t.Errorf("fire %d at %v, want %v", i, f, want)
		}
	}
}

func TestEngineScheduleEveryValidation(t *testing.T) {
	e := NewEngine(epoch)
	if err := e.ScheduleEvery(epoch, 0, epoch.Add(time.Hour), "bad", func(time.Time) {}); err == nil {
		t.Error("expected error for zero interval")
	}
	// First firing at/after horizon schedules nothing.
	if err := e.ScheduleEvery(epoch.Add(time.Hour), time.Second, epoch.Add(time.Hour), "late", func(time.Time) {}); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(epoch)
	ran := 0
	_ = e.Schedule(epoch.Add(time.Second), "a", func(time.Time) { ran++; e.Stop() })
	_ = e.Schedule(epoch.Add(2*time.Second), "b", func(time.Time) { ran++ })
	err := e.Run(epoch.Add(time.Hour))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if err := e.Schedule(epoch.Add(3*time.Second), "c", func(time.Time) {}); !errors.Is(err, ErrStopped) {
		t.Errorf("Schedule after Stop = %v, want ErrStopped", err)
	}
}

func TestEngineNilHandler(t *testing.T) {
	e := NewEngine(epoch)
	if err := e.Schedule(epoch, "nil", nil); err == nil {
		t.Error("expected error for nil handler")
	}
}

func TestEngineEventsScheduledFromHandlers(t *testing.T) {
	e := NewEngine(epoch)
	depth := 0
	var recurse func(now time.Time)
	recurse = func(now time.Time) {
		depth++
		if depth < 10 {
			_ = e.ScheduleAfter(time.Second, "recurse", recurse)
		}
	}
	_ = e.ScheduleAfter(time.Second, "recurse", recurse)
	if err := e.Run(epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
	if want := epoch.Add(10 * time.Second); !e.Now().Equal(want) {
		t.Errorf("final time %v, want %v", e.Now(), want)
	}
}

func TestEngineChronologicalProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine(epoch)
		type fired struct {
			at  time.Time
			seq int
		}
		var log []fired
		for i, off := range offsets {
			at := epoch.Add(time.Duration(off) * time.Second)
			seq := i
			if err := e.Schedule(at, "ev", func(now time.Time) {
				log = append(log, fired{at: now, seq: seq})
			}); err != nil {
				return false
			}
		}
		if err := e.Run(epoch.Add(time.Duration(1<<16) * time.Second)); err != nil {
			return false
		}
		if len(log) != len(offsets) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at.Before(log[i-1].at) {
				return false
			}
			// FIFO among same-instant events.
			if log[i].at.Equal(log[i-1].at) && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
