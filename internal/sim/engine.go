package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before the event horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a unit of simulated work executed at a virtual instant. The
// handler may schedule further events.
type Event struct {
	// At is the virtual execution time.
	At time.Time
	// Name labels the event for tracing.
	Name string
	// Fn is the handler. It runs on the engine goroutine.
	Fn func(now time.Time)

	seq int // tie-break: FIFO among events at the same instant
}

// eventQueue is a min-heap ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*Event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine bound
// to a VirtualClock. It is intentionally not safe for concurrent
// scheduling from outside event handlers: determinism is the point.
type Engine struct {
	clock   *VirtualClock
	queue   eventQueue
	nextSeq int
	stopped bool

	// Processed counts executed events.
	Processed int
}

// NewEngine creates an engine with its own virtual clock starting at
// epoch.
func NewEngine(epoch time.Time) *Engine {
	return &Engine{clock: NewVirtualClock(epoch)}
}

// NewEngineOn creates an engine driving an existing virtual clock, so
// simulated components observing that clock see event time advance.
func NewEngineOn(clock *VirtualClock) *Engine {
	return &Engine{clock: clock}
}

// Clock exposes the engine's virtual clock.
func (e *Engine) Clock() *VirtualClock { return e.clock }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Schedule enqueues fn to run at the absolute virtual instant at.
// Events scheduled in the past run at the current instant (time never
// rewinds). Returns an error if the engine was stopped.
func (e *Engine) Schedule(at time.Time, name string, fn func(now time.Time)) error {
	if e.stopped {
		return ErrStopped
	}
	if fn == nil {
		return fmt.Errorf("sim: schedule %q: nil handler", name)
	}
	if at.Before(e.clock.Now()) {
		at = e.clock.Now()
	}
	ev := &Event{At: at, Name: name, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return nil
}

// ScheduleAfter enqueues fn to run d after the current virtual
// instant.
func (e *Engine) ScheduleAfter(d time.Duration, name string, fn func(now time.Time)) error {
	return e.Schedule(e.clock.Now().Add(d), name, fn)
}

// ScheduleEvery enqueues fn to run periodically starting at first and
// then every interval, until (and excluding) the horizon. Each firing
// self-reschedules, so stopping the engine stops the series.
func (e *Engine) ScheduleEvery(first time.Time, interval time.Duration, horizon time.Time, name string, fn func(now time.Time)) error {
	if interval <= 0 {
		return fmt.Errorf("sim: schedule-every %q: non-positive interval %v", name, interval)
	}
	var tick func(now time.Time)
	tick = func(now time.Time) {
		fn(now)
		next := now.Add(interval)
		if next.Before(horizon) {
			// Re-scheduling can only fail after Stop, which is fine
			// to ignore: the series ends with the run.
			_ = e.Schedule(next, name, tick)
		}
	}
	if first.Before(horizon) {
		return e.Schedule(first, name, tick)
	}
	return nil
}

// Stop prevents further scheduling and makes Run return ErrStopped
// after the current event. Intended to be called from inside an event
// handler.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Run executes events in timestamp order until the queue drains or the
// virtual clock would pass the horizon. Events exactly at the horizon
// are not executed, mirroring a half-open [epoch, horizon) day window.
func (e *Engine) Run(horizon time.Time) error {
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if !next.At.Before(horizon) {
			return nil
		}
		heap.Pop(&e.queue)
		e.clock.AdvanceTo(next.At)
		next.Fn(e.clock.Now())
		e.Processed++
	}
	return nil
}

// Drain executes every queued event regardless of horizon. Useful for
// flushing end-of-day work.
func (e *Engine) Drain() error {
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		ev := heap.Pop(&e.queue).(*Event)
		e.clock.AdvanceTo(ev.At)
		ev.Fn(e.clock.Now())
		e.Processed++
	}
	return nil
}
