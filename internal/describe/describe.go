// Package describe implements the SCC-DLC data-description phase:
// tagging collected data with the business-model metadata the paper
// lists (§IV.A) — timing (creation/collection), location positioning
// (city, district, section, coordinates), authoring, and privacy.
package describe

import (
	"fmt"
	"time"

	"f2c/internal/model"
)

// Privacy classifies the dissemination constraints of a data item.
type Privacy int

const (
	// PrivacyPublic data may be published on the open-data interface.
	PrivacyPublic Privacy = iota + 1
	// PrivacyRestricted data is available to authorized city services
	// only.
	PrivacyRestricted
	// PrivacyPersonal data carries personal information (e.g.
	// participatory sensing) and must stay within its fog area.
	PrivacyPersonal
)

// String implements fmt.Stringer.
func (p Privacy) String() string {
	switch p {
	case PrivacyPublic:
		return "public"
	case PrivacyRestricted:
		return "restricted"
	case PrivacyPersonal:
		return "personal"
	default:
		return fmt.Sprintf("privacy(%d)", int(p))
	}
}

// Tags is the description record attached to a batch during
// acquisition.
type Tags struct {
	// City, District and Section position the batch in the urban
	// hierarchy ("Barcelona", "district-3", "section-21").
	City     string `json:"city"`
	District string `json:"district"`
	Section  string `json:"section"`
	// Centroid is the representative coordinate of the producing
	// fog area.
	Centroid model.GeoPoint `json:"centroid"`
	// Author identifies the producing platform/provider.
	Author string `json:"author"`
	// Privacy captures the dissemination class.
	Privacy Privacy `json:"privacy"`
	// Created is the earliest reading time in the batch; Collected
	// is when the fog node sealed it.
	Created   time.Time `json:"created"`
	Collected time.Time `json:"collected"`
	// QualityScore is filled by the data-quality phase (0..1).
	QualityScore float64 `json:"qualityScore"`
}

// Describer produces Tags for batches collected by one fog node.
type Describer struct {
	city     string
	district string
	section  string
	centroid model.GeoPoint
	author   string
}

// NewDescriber builds a describer for a fog node's fixed position in
// the urban hierarchy.
func NewDescriber(city, district, section string, centroid model.GeoPoint, author string) *Describer {
	return &Describer{
		city:     city,
		district: district,
		section:  section,
		centroid: centroid,
		author:   author,
	}
}

// PrivacyFor maps sensor categories to a default privacy class:
// people-flow-style urban data is restricted, everything else in the
// Sentilo catalog is public open data.
func PrivacyFor(typeName string) Privacy {
	switch typeName {
	case "people_flow":
		return PrivacyRestricted
	default:
		return PrivacyPublic
	}
}

// Describe tags a batch. QualityScore must be supplied by the caller
// (the quality phase runs immediately before description in the
// acquisition block).
func (d *Describer) Describe(b *model.Batch, qualityScore float64) Tags {
	created := b.Collected
	for i := range b.Readings {
		if t := b.Readings[i].Time; created.IsZero() || t.Before(created) {
			created = t
		}
	}
	return Tags{
		City:         d.city,
		District:     d.district,
		Section:      d.section,
		Centroid:     d.centroid,
		Author:       d.author,
		Privacy:      PrivacyFor(b.TypeName),
		Created:      created,
		Collected:    b.Collected,
		QualityScore: qualityScore,
	}
}

// Validate checks tags for completeness.
func (t Tags) Validate() error {
	switch {
	case t.City == "":
		return fmt.Errorf("tags: empty city")
	case t.Section == "":
		return fmt.Errorf("tags: empty section")
	case t.QualityScore < 0 || t.QualityScore > 1:
		return fmt.Errorf("tags: quality score %v outside [0,1]", t.QualityScore)
	}
	return nil
}
