package describe

import (
	"testing"
	"time"

	"f2c/internal/model"
)

var now = time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)

func TestDescribe(t *testing.T) {
	d := NewDescriber("barcelona", "district-3", "section-21",
		model.GeoPoint{Lat: 41.38, Lon: 2.17}, "sentilo")
	b := &model.Batch{
		NodeID: "bcn/d3/s21", TypeName: "temperature", Category: model.CategoryEnergy,
		Collected: now,
		Readings: []model.Reading{
			{SensorID: "a", TypeName: "temperature", Category: model.CategoryEnergy, Time: now.Add(-2 * time.Minute)},
			{SensorID: "b", TypeName: "temperature", Category: model.CategoryEnergy, Time: now.Add(-5 * time.Minute)},
		},
	}
	tags := d.Describe(b, 0.95)
	if tags.City != "barcelona" || tags.District != "district-3" || tags.Section != "section-21" {
		t.Errorf("position tags = %+v", tags)
	}
	if !tags.Created.Equal(now.Add(-5 * time.Minute)) {
		t.Errorf("Created = %v, want earliest reading time", tags.Created)
	}
	if !tags.Collected.Equal(now) {
		t.Errorf("Collected = %v, want %v", tags.Collected, now)
	}
	if tags.Privacy != PrivacyPublic {
		t.Errorf("Privacy = %v, want public", tags.Privacy)
	}
	if tags.QualityScore != 0.95 {
		t.Errorf("QualityScore = %v", tags.QualityScore)
	}
	if err := tags.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDescribeEmptyBatchUsesCollected(t *testing.T) {
	d := NewDescriber("bcn", "d", "s", model.GeoPoint{}, "a")
	tags := d.Describe(&model.Batch{NodeID: "n", TypeName: "traffic", Category: model.CategoryUrban, Collected: now}, 1)
	if !tags.Created.Equal(now) {
		t.Errorf("Created = %v, want collected time for empty batch", tags.Created)
	}
}

func TestPrivacyFor(t *testing.T) {
	if PrivacyFor("people_flow") != PrivacyRestricted {
		t.Error("people_flow should be restricted")
	}
	if PrivacyFor("temperature") != PrivacyPublic {
		t.Error("temperature should be public")
	}
}

func TestTagsValidate(t *testing.T) {
	good := Tags{City: "bcn", Section: "s1", QualityScore: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid tags rejected: %v", err)
	}
	bad := []Tags{
		{Section: "s1", QualityScore: 0.5},
		{City: "bcn", QualityScore: 0.5},
		{City: "bcn", Section: "s1", QualityScore: 1.5},
		{City: "bcn", Section: "s1", QualityScore: -0.1},
	}
	for i, tags := range bad {
		if err := tags.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPrivacyString(t *testing.T) {
	if PrivacyPublic.String() != "public" || PrivacyRestricted.String() != "restricted" ||
		PrivacyPersonal.String() != "personal" {
		t.Error("unexpected privacy strings")
	}
	if Privacy(9).String() != "privacy(9)" {
		t.Error("unknown privacy should render numerically")
	}
}
