package cq

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
)

// maxPanes bounds a subscription's open-pane set; past it, new panes
// fold into the nearest existing one (mirroring the degrade plane's
// nearest-window overflow) so a clock-skewed sensor cannot grow
// memory without bound. Summaries stay exact in count/sum; only the
// window attribution of the overflow readings coarsens.
const maxPanes = 512

// subState is one subscription's live evaluation state.
type subState struct {
	sub Subscription
	// cat is the traffic category of the watched type, learned from
	// observed batches (carried through snapshots so a migrated
	// subscription keeps tagging alerts before its first local batch).
	cat model.Category
	// panes accumulate per-stride partial summaries, keyed by
	// stride-aligned start.
	panes map[int64]aggregate.Summary
	// emitted records window starts whose alert already fired.
	emitted map[int64]struct{}
	// watermark is the earliest window start not yet closable; panes
	// and emitted marks below it are pruned, and late readings fold
	// forward into it.
	watermark int64
}

func newSubState(sub Subscription) *subState {
	return &subState{
		sub:     sub,
		panes:   make(map[int64]aggregate.Summary),
		emitted: make(map[int64]struct{}),
	}
}

// nearestPane returns the existing pane start closest to ps.
func (st *subState) nearestPane(ps int64) int64 {
	best, bestDist := ps, int64(-1)
	for p := range st.panes {
		d := p - ps
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = p, d
		}
	}
	return best
}

// Engine evaluates a node's standing subscriptions incrementally.
// All methods are safe for concurrent use; Observe's empty fast path
// is lock-free so nodes without subscriptions pay one atomic load per
// batch.
type Engine struct {
	active atomic.Int64 // subscription count, for the fast path

	mu     sync.Mutex
	subs   map[string]*subState
	byType map[string]map[string]*subState
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		subs:   make(map[string]*subState),
		byType: make(map[string]map[string]*subState),
	}
}

// Len is the number of standing subscriptions.
func (e *Engine) Len() int { return int(e.active.Load()) }

// Subscribe registers sub. Re-registering an identical definition is
// an idempotent no-op that keeps the live window state (the recovery
// path depends on this); a same-ID different definition replaces the
// subscription and resets its state.
func (e *Engine) Subscribe(sub Subscription) error {
	if err := sub.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.subs[sub.ID]; ok {
		if old.sub == sub {
			return nil
		}
		e.dropLocked(old)
	}
	st := newSubState(sub)
	e.subs[sub.ID] = st
	types := e.byType[sub.TypeName]
	if types == nil {
		types = make(map[string]*subState)
		e.byType[sub.TypeName] = types
	}
	types[sub.ID] = st
	e.active.Store(int64(len(e.subs)))
	return nil
}

// Unsubscribe cancels the subscription and drops its state.
func (e *Engine) Unsubscribe(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.subs[id]
	if !ok {
		return false
	}
	e.dropLocked(st)
	e.active.Store(int64(len(e.subs)))
	return true
}

func (e *Engine) dropLocked(st *subState) {
	delete(e.subs, st.sub.ID)
	if types := e.byType[st.sub.TypeName]; types != nil {
		delete(types, st.sub.ID)
		if len(types) == 0 {
			delete(e.byType, st.sub.TypeName)
		}
	}
}

// Subscriptions lists the standing subscriptions sorted by ID.
func (e *Engine) Subscriptions() []Subscription {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Subscription, 0, len(e.subs))
	for _, st := range e.subs {
		out = append(out, st.sub)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Observe folds one accepted batch into every subscription watching
// its type and returns the threshold alerts it fired, oldest window
// first. Window subscriptions only accumulate here; their alerts fire
// from Harvest when the window closes.
func (e *Engine) Observe(b *model.Batch) []Alert {
	if e.active.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	states := e.byType[b.TypeName]
	if len(states) == 0 {
		return nil
	}
	var fired []Alert
	for _, st := range states {
		st.cat = b.Category
		w := int64(st.sub.Window)
		stride := st.sub.stride()
		for i := range b.Readings {
			r := &b.Readings[i]
			ps := floorTo(r.Time.UnixNano(), stride)
			if ps < st.watermark {
				// Late reading for a closed window: fold forward so it
				// is counted without resurrecting a pruned pane or
				// refiring an emitted window.
				ps = st.watermark
			}
			pane, ok := st.panes[ps]
			if !ok && len(st.panes) >= maxPanes {
				ps = st.nearestPane(ps)
				pane = st.panes[ps]
			}
			pane = pane.Observe(r.Value)
			st.panes[ps] = pane
			if st.sub.Kind != KindThreshold || !st.sub.crossed(r.Value) {
				continue
			}
			if _, done := st.emitted[ps]; done {
				continue
			}
			st.emitted[ps] = struct{}{}
			fired = append(fired, Alert{
				SubID:     st.sub.ID,
				TypeName:  st.sub.TypeName,
				Kind:      KindThreshold,
				Category:  b.Category,
				StartUnix: ps,
				EndUnix:   ps + w,
				Summary:   pane,
				Value:     r.Value,
			})
		}
	}
	sortAlerts(fired)
	return fired
}

// Harvest closes every window whose end has passed now, fires the
// window alerts (each window exactly once), advances each
// subscription's watermark, and prunes dead panes and emitted marks.
// The caller drives it from the flush timer.
func (e *Engine) Harvest(now time.Time) []Alert {
	if e.active.Load() == 0 {
		return nil
	}
	nowNs := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	var fired []Alert
	for _, st := range e.subs {
		w := int64(st.sub.Window)
		stride := st.sub.stride()
		if st.sub.Kind == KindWindow {
			// Candidate windows: every instance covering an open pane
			// that has fully closed and has not fired yet.
			nw := w / stride
			cand := make(map[int64]struct{})
			for p := range st.panes {
				for k := int64(0); k < nw; k++ {
					ws := p - k*stride
					if ws < st.watermark || ws+w > nowNs {
						continue
					}
					if _, done := st.emitted[ws]; done {
						continue
					}
					cand[ws] = struct{}{}
				}
			}
			starts := make([]int64, 0, len(cand))
			for ws := range cand {
				starts = append(starts, ws)
			}
			sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
			for _, ws := range starts {
				merged := aggregate.Summary{}
				for k := int64(0); k < nw; k++ {
					merged = merged.Merge(st.panes[ws+k*stride])
				}
				if merged.Count <= 0 {
					continue
				}
				st.emitted[ws] = struct{}{}
				fired = append(fired, Alert{
					SubID:     st.sub.ID,
					TypeName:  st.sub.TypeName,
					Kind:      KindWindow,
					Category:  st.cat,
					StartUnix: ws,
					EndUnix:   ws + w,
					Summary:   merged,
				})
			}
		}
		// Advance the watermark to the earliest window start that is
		// not yet closable, then prune everything strictly below it: a
		// pane's youngest covering window starts at the pane itself,
		// so pane < watermark means every window it feeds has closed.
		if wm := floorTo(nowNs-w, stride) + stride; wm > st.watermark {
			st.watermark = wm
		}
		for p := range st.panes {
			if p < st.watermark {
				delete(st.panes, p)
			}
		}
		for ws := range st.emitted {
			if ws < st.watermark {
				delete(st.emitted, ws)
			}
		}
	}
	sortAlerts(fired)
	return fired
}

// MarkEmitted records that the window starting at start already fired
// for subID in an earlier life of this node — the journal-recovery
// path replaying sealed alert pushes, which must not refire.
func (e *Engine) MarkEmitted(subID string, start int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.subs[subID]; ok {
		st.emitted[start] = struct{}{}
	}
}

func sortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		a, b := &alerts[i], &alerts[j]
		if a.SubID != b.SubID {
			return a.SubID < b.SubID
		}
		return a.StartUnix < b.StartUnix
	})
}
