// Package cq evaluates continuous queries: standing subscriptions
// over a sensor type that fire windowed aggregate summaries or
// threshold alerts incrementally in the fog ingest path, instead of
// re-scanning the store the way a polled query would.
//
// A subscription names one sensor type and either a window (tumbling
// when Slide is zero or equals Window, sliding when Slide divides
// Window) over the decomposable aggregate.Summary, or a threshold
// predicate evaluated per reading inside tumbling windows. The engine
// keeps per-subscription stride-aligned panes; a sliding window is
// the merge of the panes it covers, so each reading is folded exactly
// once no matter how many window instances it appears in.
//
// Subscription lifecycle:
//
//	            Subscribe                      Unsubscribe / Extract
//	(absent) ──────────────▶ ACTIVE ───────────────────────▶ (absent)
//	                          │  ▲
//	              Observe(b)  │  │  Install(snapshot)
//	                          ▼  │  (merge panes from a migrating peer)
//	                       ACCUMULATING
//	                          │
//	            Harvest(now): │ window closed (start+width ≤ now)
//	                          ▼
//	                       EMITTED ── watermark passes ──▶ PRUNED
//
// Per window instance the transitions are one-way: OPEN (panes
// accumulating) → EMITTED (alert fired exactly once, recorded in the
// emitted set) → PRUNED (watermark passed; panes and the emitted mark
// dropped). The watermark — the earliest window start not yet
// closable — also quarantines late data: readings older than it fold
// forward into the watermark pane, so a pruned window is never
// resurrected and an emitted one never refires, while no reading is
// dropped.
//
// The engine is a passive library: the fog node drives Observe from
// ingest, Harvest from its flush timer, and persists/ships state via
// the snapshot API (journal checkpoints and shard migration).
package cq

import (
	"fmt"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
)

// Kind selects what a subscription fires.
type Kind string

const (
	// KindWindow fires one aggregate summary per closed window.
	KindWindow Kind = "window"
	// KindThreshold fires when a reading crosses the predicate, at
	// most once per (tumbling) window.
	KindThreshold Kind = "threshold"
)

// Predicate is a threshold comparison.
type Predicate string

const (
	// PredAbove fires on a reading strictly above the threshold.
	PredAbove Predicate = "gt"
	// PredBelow fires on a reading strictly below the threshold.
	PredBelow Predicate = "lt"
)

// Subscription is a standing continuous query. Durations marshal as
// nanoseconds (encoding/json's default for time.Duration).
type Subscription struct {
	// ID names the subscription; registering the same ID with a
	// different definition replaces it (and resets its window state).
	ID string `json:"id"`
	// TypeName is the watched sensor type.
	TypeName string `json:"type"`
	// Kind is KindWindow or KindThreshold.
	Kind Kind `json:"kind"`
	// Window is the aggregation window width.
	Window time.Duration `json:"window"`
	// Slide is the window advance for KindWindow: zero (or ==Window)
	// makes the window tumbling, otherwise Slide must evenly divide
	// Window. Threshold subscriptions are always tumbling (Slide must
	// be zero).
	Slide time.Duration `json:"slide,omitempty"`
	// Predicate and Threshold define the crossing for KindThreshold.
	Predicate Predicate `json:"predicate,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
}

// Validate checks the subscription definition.
func (s *Subscription) Validate() error {
	switch {
	case s.ID == "":
		return fmt.Errorf("cq: subscription without an id")
	case s.TypeName == "":
		return fmt.Errorf("cq: subscription %q without a sensor type", s.ID)
	case s.Window <= 0:
		return fmt.Errorf("cq: subscription %q with non-positive window %v", s.ID, s.Window)
	case s.Slide < 0:
		return fmt.Errorf("cq: subscription %q with negative slide %v", s.ID, s.Slide)
	}
	switch s.Kind {
	case KindWindow:
		if s.Slide > s.Window {
			return fmt.Errorf("cq: subscription %q slide %v exceeds window %v", s.ID, s.Slide, s.Window)
		}
		if s.Slide > 0 && s.Window%s.Slide != 0 {
			return fmt.Errorf("cq: subscription %q slide %v does not divide window %v", s.ID, s.Slide, s.Window)
		}
		if s.Predicate != "" {
			return fmt.Errorf("cq: window subscription %q with a predicate", s.ID)
		}
	case KindThreshold:
		if s.Slide != 0 && s.Slide != s.Window {
			return fmt.Errorf("cq: threshold subscription %q must be tumbling (slide %v)", s.ID, s.Slide)
		}
		if s.Predicate != PredAbove && s.Predicate != PredBelow {
			return fmt.Errorf("cq: threshold subscription %q with predicate %q", s.ID, s.Predicate)
		}
	default:
		return fmt.Errorf("cq: subscription %q with kind %q", s.ID, s.Kind)
	}
	return nil
}

// stride is the pane width in nanoseconds: the slide for a sliding
// window, the window itself otherwise.
func (s *Subscription) stride() int64 {
	if s.Kind == KindWindow && s.Slide > 0 && s.Slide < s.Window {
		return int64(s.Slide)
	}
	return int64(s.Window)
}

// crossed reports whether v satisfies the threshold predicate.
func (s *Subscription) crossed(v float64) bool {
	if s.Predicate == PredBelow {
		return v < s.Threshold
	}
	return v > s.Threshold
}

// Alert is one fired result: a closed window's aggregate, or a
// threshold crossing with the partial aggregate seen so far.
type Alert struct {
	SubID    string
	TypeName string
	Kind     Kind
	Category model.Category
	// StartUnix and EndUnix bound the window (unix nanoseconds).
	StartUnix int64
	EndUnix   int64
	Summary   aggregate.Summary
	// Value is the crossing reading (threshold alerts only).
	Value float64
}

// floorTo rounds ts down to a multiple of stride (toward -inf for
// negative timestamps, matching the degrade plane's window floor).
func floorTo(ts, stride int64) int64 {
	return ts - (((ts % stride) + stride) % stride)
}
