package cq

import (
	"testing"
	"time"

	"f2c/internal/model"
)

func batchAt(typ string, times []int64, values []float64) *model.Batch {
	b := &model.Batch{
		NodeID:    "fog1/test",
		TypeName:  typ,
		Category:  model.CategoryUrban,
		Collected: time.Unix(0, times[len(times)-1]),
	}
	for i, ts := range times {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: typ + "/s1",
			TypeName: typ,
			Category: model.CategoryUrban,
			Time:     time.Unix(0, ts),
			Value:    values[i],
			Unit:     "u",
		})
	}
	return b
}

func TestTumblingWindowFiresOncePerWindow(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	if err := e.Subscribe(Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}); err != nil {
		t.Fatal(err)
	}
	// Two readings in window [0, 1m), one in [1m, 2m).
	if got := e.Observe(batchAt("traffic", []int64{1, 2, int64(w) + 1}, []float64{10, 20, 30})); len(got) != 0 {
		t.Fatalf("window subscription fired from Observe: %+v", got)
	}
	// Harvest at 1m: only the first window has closed.
	fired := e.Harvest(time.Unix(0, int64(w)))
	if len(fired) != 1 {
		t.Fatalf("fired %d alerts, want 1: %+v", len(fired), fired)
	}
	a := fired[0]
	if a.SubID != "w1" || a.Kind != KindWindow || a.StartUnix != 0 || a.EndUnix != int64(w) {
		t.Fatalf("alert = %+v", a)
	}
	if a.Summary.Count != 2 || a.Summary.Sum != 30 || a.Summary.Min != 10 || a.Summary.Max != 20 {
		t.Fatalf("summary = %+v", a.Summary)
	}
	// Harvest again at the same instant: exactly-once.
	if again := e.Harvest(time.Unix(0, int64(w))); len(again) != 0 {
		t.Fatalf("window refired: %+v", again)
	}
	// Advancing past the second window fires it once.
	fired = e.Harvest(time.Unix(0, 2*int64(w)))
	if len(fired) != 1 || fired[0].StartUnix != int64(w) || fired[0].Summary.Count != 1 {
		t.Fatalf("second window = %+v", fired)
	}
}

func TestSlidingWindowMergesPanes(t *testing.T) {
	e := NewEngine()
	w, slide := 2*time.Minute, time.Minute
	if err := e.Subscribe(Subscription{ID: "s1", TypeName: "noise", Kind: KindWindow, Window: w, Slide: slide}); err != nil {
		t.Fatal(err)
	}
	// One reading per minute for minutes 0, 1, 2. The instance starting
	// at -1m sits below the initial watermark and never fires.
	e.Observe(batchAt("noise", []int64{1, int64(slide) + 1, 2*int64(slide) + 1}, []float64{1, 2, 4}))
	// At t=3m the instances starting at 0m and 1m have closed.
	fired := e.Harvest(time.Unix(0, 3*int64(slide)))
	if len(fired) != 2 {
		t.Fatalf("fired %d alerts, want 2: %+v", len(fired), fired)
	}
	// Window [0, 2m) covers readings 1 and 2; window [1m, 3m) covers 2 and 4.
	if fired[0].StartUnix != 0 || fired[0].Summary.Count != 2 || fired[0].Summary.Sum != 3 {
		t.Fatalf("window [0,2m) = %+v", fired[0])
	}
	if fired[1].StartUnix != int64(slide) || fired[1].Summary.Count != 2 || fired[1].Summary.Sum != 6 {
		t.Fatalf("window [1m,3m) = %+v", fired[1])
	}
}

func TestThresholdFiresOncePerWindow(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	err := e.Subscribe(Subscription{
		ID: "t1", TypeName: "air", Kind: KindThreshold, Window: w,
		Predicate: PredAbove, Threshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two crossings in the same window fire once; a below-threshold
	// reading never fires.
	fired := e.Observe(batchAt("air", []int64{1, 2, 3}, []float64{60, 10, 70}))
	if len(fired) != 1 {
		t.Fatalf("fired %d alerts, want 1: %+v", len(fired), fired)
	}
	if fired[0].Kind != KindThreshold || fired[0].Value != 60 || fired[0].StartUnix != 0 {
		t.Fatalf("alert = %+v", fired[0])
	}
	// Partial summary: readings folded up to (and including) the crossing.
	if fired[0].Summary.Count != 1 || fired[0].Summary.Sum != 60 {
		t.Fatalf("summary = %+v", fired[0].Summary)
	}
	// A crossing in the next window fires again.
	fired = e.Observe(batchAt("air", []int64{int64(w) + 1}, []float64{80}))
	if len(fired) != 1 || fired[0].StartUnix != int64(w) {
		t.Fatalf("next-window crossing = %+v", fired)
	}
	// Window alerts do not also fire for threshold subscriptions.
	if got := e.Harvest(time.Unix(0, 3*int64(w))); len(got) != 0 {
		t.Fatalf("threshold subscription fired from Harvest: %+v", got)
	}
}

func TestPredicateBelow(t *testing.T) {
	e := NewEngine()
	err := e.Subscribe(Subscription{
		ID: "b1", TypeName: "temp", Kind: KindThreshold, Window: time.Minute,
		Predicate: PredBelow, Threshold: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired := e.Observe(batchAt("temp", []int64{1}, []float64{5})); len(fired) != 0 {
		t.Fatalf("fired above threshold: %+v", fired)
	}
	if fired := e.Observe(batchAt("temp", []int64{2}, []float64{-3})); len(fired) != 1 {
		t.Fatalf("did not fire below threshold: %+v", fired)
	}
}

func TestLateDataFoldsForwardWithoutRefire(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	if err := e.Subscribe(Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}); err != nil {
		t.Fatal(err)
	}
	e.Observe(batchAt("traffic", []int64{1}, []float64{10}))
	if fired := e.Harvest(time.Unix(0, 2*int64(w))); len(fired) != 1 {
		t.Fatalf("fired %d, want 1", len(fired))
	}
	// A straggler for the closed window [0, 1m) must not resurrect it;
	// it folds into the watermark pane and fires with that window.
	if fired := e.Observe(batchAt("traffic", []int64{2}, []float64{99})); len(fired) != 0 {
		t.Fatalf("late observe fired: %+v", fired)
	}
	fired := e.Harvest(time.Unix(0, 4*int64(w)))
	if len(fired) != 1 {
		t.Fatalf("fired %d, want 1: %+v", len(fired), fired)
	}
	if fired[0].StartUnix == 0 {
		t.Fatalf("closed window resurrected: %+v", fired[0])
	}
	if fired[0].Summary.Count != 1 || fired[0].Summary.Sum != 99 {
		t.Fatalf("late reading lost: %+v", fired[0].Summary)
	}
}

func TestMarkEmittedSuppressesRefire(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	if err := e.Subscribe(Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}); err != nil {
		t.Fatal(err)
	}
	e.Observe(batchAt("traffic", []int64{1}, []float64{10}))
	// Recovery replays the sealed alert for window 0 before re-observing.
	e.MarkEmitted("w1", 0)
	if fired := e.Harvest(time.Unix(0, int64(w))); len(fired) != 0 {
		t.Fatalf("marked window refired: %+v", fired)
	}
}

func TestPaneOverflowFoldsToNearest(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	if err := e.Subscribe(Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}); err != nil {
		t.Fatal(err)
	}
	// maxPanes+64 distinct windows: the overflow folds into existing
	// panes instead of growing without bound, and no reading is lost.
	var times []int64
	var values []float64
	for i := 0; i < maxPanes+64; i++ {
		times = append(times, int64(i)*int64(w)+1)
		values = append(values, 1)
	}
	e.Observe(batchAt("traffic", times, values))
	e.mu.Lock()
	panes := len(e.subs["w1"].panes)
	var total int64
	for _, s := range e.subs["w1"].panes {
		total += s.Count
	}
	e.mu.Unlock()
	if panes > maxPanes {
		t.Fatalf("pane set grew to %d, cap is %d", panes, maxPanes)
	}
	if total != int64(maxPanes+64) {
		t.Fatalf("readings lost in fold: %d of %d", total, maxPanes+64)
	}
}

func TestSubscribeIdempotentAndReplace(t *testing.T) {
	e := NewEngine()
	sub := Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: time.Minute}
	if err := e.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	e.Observe(batchAt("traffic", []int64{1}, []float64{10}))
	// Identical re-registration keeps the accumulated state.
	if err := e.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if fired := e.Harvest(time.Unix(0, int64(time.Minute))); len(fired) != 1 {
		t.Fatalf("idempotent re-subscribe dropped state: %+v", fired)
	}
	// A different definition under the same ID resets it.
	sub.Window = 2 * time.Minute
	if err := e.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	if got := e.Subscriptions(); len(got) != 1 || got[0].Window != 2*time.Minute {
		t.Fatalf("replace failed: %+v", got)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
}

func TestSnapshotInstallRoundTrip(t *testing.T) {
	e := NewEngine()
	w := time.Minute
	if err := e.Subscribe(Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}); err != nil {
		t.Fatal(err)
	}
	e.Observe(batchAt("traffic", []int64{1, int64(w) + 1}, []float64{10, 20}))
	e.Harvest(time.Unix(0, int64(w))) // fire window 0, set the watermark

	snaps := e.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d subs, want 1", len(snaps))
	}
	doc, err := EncodeSubSnapshot(&snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSubSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh engine restored from the snapshot must not refire window
	// 0 and must fire window 1 with the same summary.
	e2 := NewEngine()
	if err := e2.Install(*decoded); err != nil {
		t.Fatal(err)
	}
	fired := e2.Harvest(time.Unix(0, 2*int64(w)))
	if len(fired) != 1 || fired[0].StartUnix != int64(w) {
		t.Fatalf("restored engine fired %+v", fired)
	}
	if fired[0].Summary.Count != 1 || fired[0].Summary.Sum != 20 {
		t.Fatalf("restored summary = %+v", fired[0].Summary)
	}
	if fired[0].Category != model.CategoryUrban {
		t.Fatalf("category lost through snapshot: %v", fired[0].Category)
	}
}

func TestInstallMergesSameDefinition(t *testing.T) {
	// Shard migration absorb: the target already holds the subscription
	// with its own partial panes; the incoming snapshot's panes merge.
	w := time.Minute
	sub := Subscription{ID: "w1", TypeName: "traffic", Kind: KindWindow, Window: w}

	src := NewEngine()
	if err := src.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	src.Observe(batchAt("traffic", []int64{1}, []float64{10}))

	dst := NewEngine()
	if err := dst.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	dst.Observe(batchAt("traffic", []int64{2}, []float64{20}))

	moved := src.Extract("traffic")
	if len(moved) != 1 {
		t.Fatalf("extracted %d subs, want 1", len(moved))
	}
	if src.Len() != 0 {
		t.Fatalf("source still holds %d subs", src.Len())
	}
	if err := dst.Install(moved[0]); err != nil {
		t.Fatal(err)
	}
	fired := dst.Harvest(time.Unix(0, int64(w)))
	if len(fired) != 1 || fired[0].Summary.Count != 2 || fired[0].Summary.Sum != 30 {
		t.Fatalf("merged window = %+v", fired)
	}
}

func TestValidateRejectsBadSubscriptions(t *testing.T) {
	bad := []Subscription{
		{TypeName: "t", Kind: KindWindow, Window: time.Minute},                                                // no ID
		{ID: "a", Kind: KindWindow, Window: time.Minute},                                                      // no type
		{ID: "a", TypeName: "t", Kind: KindWindow},                                                            // no window
		{ID: "a", TypeName: "t", Kind: KindWindow, Window: time.Minute, Slide: 7 * time.Second},               // slide !| window
		{ID: "a", TypeName: "t", Kind: KindWindow, Window: time.Minute, Slide: 2 * time.Minute},               // slide > window
		{ID: "a", TypeName: "t", Kind: KindThreshold, Window: time.Minute},                                    // no predicate
		{ID: "a", TypeName: "t", Kind: KindThreshold, Window: time.Minute, Predicate: "ge"},                   // bad predicate
		{ID: "a", TypeName: "t", Kind: KindThreshold, Window: time.Minute, Predicate: PredAbove, Slide: 30e9}, // sliding threshold
		{ID: "a", TypeName: "t", Kind: "trend", Window: time.Minute},                                          // bad kind
	}
	for i, sub := range bad {
		if err := sub.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, sub)
		}
	}
	good := Subscription{ID: "a", TypeName: "t", Kind: KindWindow, Window: time.Minute, Slide: 30 * time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid subscription rejected: %v", err)
	}
}
