package cq

import (
	"encoding/json"
	"fmt"
	"sort"

	"f2c/internal/aggregate"
	"f2c/internal/model"
)

// Pane is one serialized window pane.
type Pane struct {
	Start   int64             `json:"start"`
	Summary aggregate.Summary `json:"summary"`
}

// SubSnapshot is a subscription with its live evaluation state — the
// unit the fog journal checkpoints and shard migration ships. It
// marshals as JSON: subscriptions are rare and small, so the
// readability beats a binary layout.
type SubSnapshot struct {
	Sub       Subscription `json:"sub"`
	Category  string       `json:"category,omitempty"`
	Panes     []Pane       `json:"panes,omitempty"`
	Emitted   []int64      `json:"emitted,omitempty"`
	Watermark int64        `json:"watermark,omitempty"`
}

// EncodeSubSnapshot marshals the snapshot.
func EncodeSubSnapshot(s *SubSnapshot) ([]byte, error) {
	doc, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("cq: encode snapshot: %w", err)
	}
	return doc, nil
}

// DecodeSubSnapshot unmarshals and validates a snapshot document.
func DecodeSubSnapshot(doc []byte) (*SubSnapshot, error) {
	var s SubSnapshot
	if err := json.Unmarshal(doc, &s); err != nil {
		return nil, fmt.Errorf("cq: decode snapshot: %w", err)
	}
	if err := s.Sub.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (e *Engine) snapshotLocked(st *subState) SubSnapshot {
	snap := SubSnapshot{Sub: st.sub, Watermark: st.watermark}
	if st.cat.Valid() {
		snap.Category = st.cat.String()
	}
	for p, s := range st.panes {
		if s.Count <= 0 {
			continue
		}
		snap.Panes = append(snap.Panes, Pane{Start: p, Summary: s})
	}
	sort.Slice(snap.Panes, func(i, j int) bool { return snap.Panes[i].Start < snap.Panes[j].Start })
	for ws := range st.emitted {
		snap.Emitted = append(snap.Emitted, ws)
	}
	sort.Slice(snap.Emitted, func(i, j int) bool { return snap.Emitted[i] < snap.Emitted[j] })
	return snap
}

// Snapshot exports every subscription's state, sorted by ID — the
// journal-checkpoint view.
func (e *Engine) Snapshot() []SubSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SubSnapshot, 0, len(e.subs))
	for _, st := range e.subs {
		out = append(out, e.snapshotLocked(st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sub.ID < out[j].Sub.ID })
	return out
}

// Install merges a snapshot into the engine. A new ID is installed
// wholesale; an existing one with the same definition merges pane
// summaries, unions emitted marks, and keeps the later watermark —
// the shard-migration absorb path, where the target may already hold
// the subscription with its own partial windows. A same-ID different
// definition is replaced by the snapshot's.
func (e *Engine) Install(snap SubSnapshot) error {
	if err := snap.Sub.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.subs[snap.Sub.ID]
	if !ok || st.sub != snap.Sub {
		if ok {
			e.dropLocked(st)
		}
		st = newSubState(snap.Sub)
		e.subs[snap.Sub.ID] = st
		types := e.byType[snap.Sub.TypeName]
		if types == nil {
			types = make(map[string]*subState)
			e.byType[snap.Sub.TypeName] = types
		}
		types[snap.Sub.ID] = st
		e.active.Store(int64(len(e.subs)))
	}
	if snap.Category != "" {
		if cat, err := model.ParseCategory(snap.Category); err == nil {
			st.cat = cat
		}
	}
	for _, p := range snap.Panes {
		st.panes[p.Start] = st.panes[p.Start].Merge(p.Summary)
	}
	for _, ws := range snap.Emitted {
		st.emitted[ws] = struct{}{}
	}
	if snap.Watermark > st.watermark {
		st.watermark = snap.Watermark
	}
	return nil
}

// Extract removes every subscription watching typ and returns their
// snapshots (sorted by ID) — the shard-migration handoff. The caller
// re-Installs them on failure.
func (e *Engine) Extract(typ string) []SubSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	types := e.byType[typ]
	if len(types) == 0 {
		return nil
	}
	out := make([]SubSnapshot, 0, len(types))
	for _, st := range types {
		out = append(out, e.snapshotLocked(st))
	}
	for _, snap := range out {
		e.dropLocked(e.subs[snap.Sub.ID])
	}
	e.active.Store(int64(len(e.subs)))
	sort.Slice(out, func(i, j int) bool { return out[i].Sub.ID < out[j].Sub.ID })
	return out
}
