// Package integration_test assembles a real three-layer hierarchy
// over HTTP loopback — the multi-process deployment f2cd supports —
// and drives data end to end through actual sockets.
package integration_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cloud"
	"f2c/internal/fognode"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

// deployment is a loopback city: 1 fog1 + 1 fog2 + cloud, each behind
// its own HTTP server.
type deployment struct {
	fog1  *fognode.Node
	fog2  *fognode.Node
	cloud *cloud.Node

	fog1URL, fog2URL, cloudURL string
	client                     *transport.HTTPTransport
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	clock := sim.NewVirtualClock(t0)

	cl, err := cloud.New(cloud.Config{ID: "cloud", City: "loopback", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv := httptest.NewServer(transport.NewHTTPHandler("cloud", cl))
	t.Cleanup(cloudSrv.Close)

	fog2Transport := transport.NewHTTPTransport(5 * time.Second)
	fog2Transport.AddPeer("cloud", cloudSrv.URL)
	f2, err := fognode.New(fognode.Config{
		Spec: topology.NodeSpec{
			ID: "fog2/d01", Layer: topology.LayerFog2, Parent: "cloud", Name: "District 1",
		},
		City: "loopback", Clock: clock, Transport: fog2Transport,
		Retention: 24 * time.Hour, Codec: aggregate.CodecZip,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fog2Srv := httptest.NewServer(transport.NewHTTPHandler("fog2/d01", f2))
	t.Cleanup(fog2Srv.Close)

	fog1Transport := transport.NewHTTPTransport(5 * time.Second)
	fog1Transport.AddPeer("fog2/d01", fog2Srv.URL)
	f1, err := fognode.New(fognode.Config{
		Spec: topology.NodeSpec{
			ID: "fog1/d01-s01", Layer: topology.LayerFog1, Parent: "fog2/d01", Name: "Section 1",
		},
		City: "loopback", Clock: clock, Transport: fog1Transport,
		Retention: time.Hour, Codec: aggregate.CodecZip, Dedup: true, Quality: true,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fog1Srv := httptest.NewServer(transport.NewHTTPHandler("fog1/d01-s01", f1))
	t.Cleanup(fog1Srv.Close)

	client := transport.NewHTTPTransport(5 * time.Second)
	client.AddPeer("fog1/d01-s01", fog1Srv.URL)
	client.AddPeer("fog2/d01", fog2Srv.URL)
	client.AddPeer("cloud", cloudSrv.URL)

	return &deployment{
		fog1: f1, fog2: f2, cloud: cl,
		fog1URL: fog1Srv.URL, fog2URL: fog2Srv.URL, cloudURL: cloudSrv.URL,
		client: client,
	}
}

func sensorBatch(at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: "edge/device-9", TypeName: "weather", Category: model.CategoryUrban, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: "station/" + string(rune('a'+i)), TypeName: "weather",
			Category: model.CategoryUrban, Time: at, Value: v, Unit: "hPa",
		})
	}
	return b
}

func TestHTTPHierarchyEndToEnd(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()

	// A sensor posts a batch envelope to the fog1 node over HTTP.
	payload, err := protocol.EncodeBatchPayload(sensorBatch(t0, 1013, 1015), aggregate.CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge/device-9", To: "fog1/d01-s01", Kind: transport.KindBatch,
		Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}

	// Real-time query against fog1 over HTTP.
	q, _ := protocol.EncodeJSON(protocol.QueryRequest{SensorID: "station/a"})
	reply, err := d.client.Send(ctx, transport.Message{
		From: "app", To: "fog1/d01-s01", Kind: transport.KindQuery, Payload: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp protocol.QueryResponse
	if err := protocol.DecodeJSON(reply, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Readings[0].Value != 1013 {
		t.Fatalf("fog1 query = %+v", resp)
	}

	// Control-plane flushes push data up: fog1 -> fog2 -> cloud.
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "f2cctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatalf("flush %s: %v", node, err)
		}
	}

	// The cloud has archived the readings.
	if got := d.cloud.Archive().Len(); got != 1 {
		t.Fatalf("cloud archive = %d records", got)
	}
	hist := d.cloud.Historical("weather", t0.Add(-time.Hour), t0.Add(time.Hour))
	if len(hist) != 2 {
		t.Fatalf("historical = %d readings", len(hist))
	}

	// Status over HTTP reflects the flow.
	statusReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpStatus})
	reply, err = d.client.Send(ctx, transport.Message{
		From: "f2cctl", To: "fog1/d01-s01", Kind: transport.KindControl, Payload: statusReq,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st protocol.StatusResponse
	if err := protocol.DecodeJSON(reply, &st); err != nil {
		t.Fatal(err)
	}
	if st.NodeID != "fog1/d01-s01" || st.PendingBatches != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestHTTPHierarchyBackgroundFlushers(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()

	d.fog1.Start()
	d.fog2.Start()
	defer func() {
		if err := d.fog1.Close(ctx); err != nil {
			t.Errorf("close fog1: %v", err)
		}
		if err := d.fog2.Close(ctx); err != nil {
			t.Errorf("close fog2: %v", err)
		}
	}()

	if err := d.fog1.Ingest(sensorBatch(t0, 1020)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for d.cloud.Archive().Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("data never reached the cloud via background flushers")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestHTTPOpenDataServedFromHierarchy(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()
	payload, err := protocol.EncodeBatchPayload(sensorBatch(t0, 990), aggregate.CodecZip)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge", To: "fog1/d01-s01", Kind: transport.KindBatch, Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "ctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Dissemination over HTTP from the cloud node.
	srv := httptest.NewServer(d.cloud.OpenDataHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/opendata/v1/types/weather/readings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("open data status = %d", resp.StatusCode)
	}
}
