// Package integration_test assembles a real three-layer hierarchy
// over HTTP loopback — the multi-process deployment f2cd supports —
// and drives data end to end through actual sockets.
package integration_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cloud"
	"f2c/internal/fognode"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/query"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

// deployment is a loopback city: 1 fog1 + 1 fog2 + cloud, each behind
// its own HTTP server — the same wiring the f2cd daemon assembles
// from its flags, driven over real sockets.
type deployment struct {
	fog1  *fognode.Node
	fog2  *fognode.Node
	cloud *cloud.Node
	clock *sim.VirtualClock

	fog1URL, fog2URL, cloudURL string
	fog1Srv, fog2Srv, cloudSrv *httptest.Server
	client                     *transport.HTTPTransport
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	clock := sim.NewVirtualClock(t0)

	cl, err := cloud.New(cloud.Config{ID: "cloud", City: "loopback", Clock: clock, MaxQueryPage: 4})
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv := httptest.NewServer(transport.NewHTTPHandler("cloud", cl))
	t.Cleanup(cloudSrv.Close)

	fog2Transport := transport.NewHTTPTransport(5 * time.Second)
	fog2Transport.AddPeer("cloud", cloudSrv.URL)
	f2, err := fognode.New(fognode.Config{
		Spec: topology.NodeSpec{
			ID: "fog2/d01", Layer: topology.LayerFog2, Parent: "cloud", Name: "District 1",
		},
		City: "loopback", Clock: clock, Transport: fog2Transport,
		Retention: 24 * time.Hour, Codec: aggregate.CodecZip,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fog2Srv := httptest.NewServer(transport.NewHTTPHandler("fog2/d01", f2))
	t.Cleanup(fog2Srv.Close)

	fog1Transport := transport.NewHTTPTransport(5 * time.Second)
	fog1Transport.AddPeer("fog2/d01", fog2Srv.URL)
	f1, err := fognode.New(fognode.Config{
		Spec: topology.NodeSpec{
			ID: "fog1/d01-s01", Layer: topology.LayerFog1, Parent: "fog2/d01", Name: "Section 1",
		},
		City: "loopback", Clock: clock, Transport: fog1Transport,
		Retention: time.Hour, Codec: aggregate.CodecZip, Dedup: true, Quality: true,
		FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fog1Srv := httptest.NewServer(transport.NewHTTPHandler("fog1/d01-s01", f1))
	t.Cleanup(fog1Srv.Close)

	client := transport.NewHTTPTransport(5 * time.Second)
	client.AddPeer("fog1/d01-s01", fog1Srv.URL)
	client.AddPeer("fog2/d01", fog2Srv.URL)
	client.AddPeer("cloud", cloudSrv.URL)

	return &deployment{
		fog1: f1, fog2: f2, cloud: cl, clock: clock,
		fog1URL: fog1Srv.URL, fog2URL: fog2Srv.URL, cloudURL: cloudSrv.URL,
		fog1Srv: fog1Srv, fog2Srv: fog2Srv, cloudSrv: cloudSrv,
		client: client,
	}
}

func sensorBatch(at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: "edge/device-9", TypeName: "weather", Category: model.CategoryUrban, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: "station/" + string(rune('a'+i)), TypeName: "weather",
			Category: model.CategoryUrban, Time: at, Value: v, Unit: "hPa",
		})
	}
	return b
}

func TestHTTPHierarchyEndToEnd(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()

	// A sensor posts a batch envelope to the fog1 node over HTTP.
	payload, err := protocol.EncodeBatchPayload(sensorBatch(t0, 1013, 1015), aggregate.CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge/device-9", To: "fog1/d01-s01", Kind: transport.KindBatch,
		Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}

	// Real-time query against fog1 over HTTP.
	q, _ := protocol.EncodeJSON(protocol.QueryRequest{SensorID: "station/a"})
	reply, err := d.client.Send(ctx, transport.Message{
		From: "app", To: "fog1/d01-s01", Kind: transport.KindQuery, Payload: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeQueryPage(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Readings[0].Value != 1013 {
		t.Fatalf("fog1 query = %+v", resp)
	}

	// Control-plane flushes push data up: fog1 -> fog2 -> cloud.
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "f2cctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatalf("flush %s: %v", node, err)
		}
	}

	// The cloud has archived the readings.
	if got := d.cloud.Archive().Len(); got != 1 {
		t.Fatalf("cloud archive = %d records", got)
	}
	hist := d.cloud.Historical("weather", t0.Add(-time.Hour), t0.Add(time.Hour))
	if len(hist) != 2 {
		t.Fatalf("historical = %d readings", len(hist))
	}

	// Status over HTTP reflects the flow.
	statusReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpStatus})
	reply, err = d.client.Send(ctx, transport.Message{
		From: "f2cctl", To: "fog1/d01-s01", Kind: transport.KindControl, Payload: statusReq,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st protocol.StatusResponse
	if err := protocol.DecodeJSON(reply, &st); err != nil {
		t.Fatal(err)
	}
	if st.NodeID != "fog1/d01-s01" || st.PendingBatches != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestHTTPHierarchyBackgroundFlushers(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()

	d.fog1.Start()
	d.fog2.Start()
	defer func() {
		if err := d.fog1.Close(ctx); err != nil {
			t.Errorf("close fog1: %v", err)
		}
		if err := d.fog2.Close(ctx); err != nil {
			t.Errorf("close fog2: %v", err)
		}
	}()

	if err := d.fog1.Ingest(sensorBatch(t0, 1020)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for d.cloud.Archive().Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("data never reached the cloud via background flushers")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// federatedBatch builds one sensor's stream with distinct timestamps
// so paged scans have an ordered window to walk.
func federatedBatch(at time.Time, n int) *model.Batch {
	b := &model.Batch{NodeID: "edge/device-7", TypeName: "weather", Category: model.CategoryUrban, Collected: at}
	for i := 0; i < n; i++ {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: "station/walk", TypeName: "weather", Category: model.CategoryUrban,
			Time: at.Add(time.Duration(i) * time.Second), Value: 1000 + float64(i), Unit: "hPa",
		})
	}
	return b
}

// TestHTTPFederatedQueryAndAggregate drives the hierarchical query
// engine through real sockets: a federated range query routed by the
// tier planner, a manual page-cursor walk against the cloud (each
// response bounded by the server's page limit), and an aggregate
// push-down where only summary-sized payloads cross the wire.
func TestHTTPFederatedQueryAndAggregate(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()
	const total = 25

	payload, err := protocol.EncodeBatchPayload(federatedBatch(t0, total), aggregate.CodecZip)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge/device-7", To: "fog1/d01-s01", Kind: transport.KindBatch,
		Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "ctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatalf("flush %s: %v", node, err)
		}
	}

	eng, err := query.New(query.Config{
		Self:      "app",
		Transport: d.client,
		Clock:     d.clock,
		Siblings:  []string{"fog1/d01-s01"},
		Parent:    "fog2/d01",
		Districts: []string{"fog2/d01"},
		CloudID:   "cloud",
		PageLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Recent range: the planner routes to the fog layer-1 tier.
	readings, src, err := eng.Range(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if src != query.SourceNeighbor || len(readings) != total {
		t.Fatalf("recent range = %d readings from %v", len(readings), src)
	}

	// Aggregate push-down over the recent window: the district
	// computes the partial; only the summary crosses the wire.
	sum, src, err := eng.Aggregate(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if src != query.SourceParent || sum.Count != total || sum.Min != 1000 || sum.Max != 1000+total-1 {
		t.Fatalf("aggregate = %+v from %v", sum, src)
	}

	// Manual page-cursor walk against the cloud over HTTP: the server
	// was deployed with MaxQueryPage 4, so no response may carry more.
	var walked []model.Reading
	cursor, pages := "", 0
	for {
		req, _ := protocol.EncodeJSON(protocol.QueryRequest{
			TypeName: "weather",
			FromUnix: t0.Add(-time.Minute).UnixNano(), ToUnix: t0.Add(time.Hour).UnixNano(),
			Limit: 100, Cursor: cursor, // ask big: the server clamps to its limit
		})
		reply, err := d.client.Send(ctx, transport.Message{
			From: "app", To: "cloud", Kind: transport.KindQuery,
			Class: transport.ClassQuery, Payload: req,
		})
		if err != nil {
			t.Fatal(err)
		}
		page, err := protocol.DecodeQueryPage(reply)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Readings) > 4 {
			t.Fatalf("page %d carries %d readings, server page limit is 4", pages, len(page.Readings))
		}
		walked = append(walked, page.Readings...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != total || pages != (total+3)/4 {
		t.Fatalf("cursor walk = %d readings in %d pages, want %d in %d", len(walked), pages, total, (total+3)/4)
	}
	for i := 1; i < len(walked); i++ {
		if walked[i].Time.Before(walked[i-1].Time) {
			t.Fatalf("walk out of order at %d", i)
		}
	}

	// Two days later the fog windows have passed: the same federated
	// query must be routed straight to the cloud archive, paged.
	d.clock.Advance(48 * time.Hour)
	readings, src, err = eng.Range(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if src != query.SourceCloud || len(readings) != total {
		t.Fatalf("historical range = %d readings from %v", len(readings), src)
	}
	sum, src, err = eng.Aggregate(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if src != query.SourceCloud || sum.Count != total {
		t.Fatalf("historical aggregate = %+v from %v", sum, src)
	}
}

func TestHTTPOpenDataServedFromHierarchy(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()
	payload, err := protocol.EncodeBatchPayload(sensorBatch(t0, 990), aggregate.CodecZip)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge", To: "fog1/d01-s01", Kind: transport.KindBatch, Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "ctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Dissemination over HTTP from the cloud node.
	srv := httptest.NewServer(d.cloud.OpenDataHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/opendata/v1/types/weather/readings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("open data status = %d", resp.StatusCode)
	}
}

// TestHTTPQueryUnderPartition kills real servers mid-deployment and
// drives the engine's degraded paths through actual sockets: a
// federated range with the whole fog layer down answers from the
// cloud flagged partial; the aggregate push-down falls back to the
// cloud when the district is down; and with every owner dead the
// engine errors out instead of hanging.
func TestHTTPQueryUnderPartition(t *testing.T) {
	d := deploy(t)
	ctx := context.Background()
	const total = 10

	payload, err := protocol.EncodeBatchPayload(federatedBatch(t0, total), aggregate.CodecZip)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Send(ctx, transport.Message{
		From: "edge/device-7", To: "fog1/d01-s01", Kind: transport.KindBatch,
		Class: "urban", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	flushReq, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	for _, node := range []string{"fog1/d01-s01", "fog2/d01"} {
		if _, err := d.client.Send(ctx, transport.Message{
			From: "ctl", To: node, Kind: transport.KindControl, Payload: flushReq,
		}); err != nil {
			t.Fatalf("flush %s: %v", node, err)
		}
	}

	eng, err := query.New(query.Config{
		Self:      "app",
		Transport: d.client,
		Clock:     d.clock,
		Siblings:  []string{"fog1/d01-s01"},
		Parent:    "fog2/d01",
		Districts: []string{"fog2/d01"},
		CloudID:   "cloud",
		PageLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The whole fog layer goes down; the data survives at the cloud.
	d.fog1Srv.Close()
	d.fog2Srv.Close()

	res, err := eng.RangeDetailed(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != query.SourceCloud || len(res.Readings) != total {
		t.Fatalf("range = %d readings from %v, want %d from cloud", len(res.Readings), res.Source, total)
	}
	if !res.Partial || len(res.Unreachable) != 2 {
		t.Errorf("partial=%v unreachable=%v, want both dead fog tiers reported", res.Partial, res.Unreachable)
	}

	// Aggregate push-down: the only district owner is dead, so the
	// engine takes the cloud's complete summary (no silent partial).
	agg, err := eng.AggregateDetailed(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Partial || agg.Source != query.SourceCloud || agg.Summary.Count != total {
		t.Fatalf("aggregate = %+v, want complete count %d from cloud", agg, total)
	}

	// Every owner dead: explicit errors, bounded by the fan-out
	// timeout — never a hang.
	d.cloudSrv.Close()
	if _, err := eng.RangeDetailed(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour), 1000); err == nil {
		t.Error("range with every tier dead must error")
	}
	if _, err := eng.AggregateDetailed(ctx, "weather", t0.Add(-time.Minute), t0.Add(time.Hour)); err == nil {
		t.Error("aggregate with every owner dead must error")
	}
}
