package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"f2c/internal/metrics"
	"f2c/internal/sim"
)

// TestTokenBucketDeterminism replays the same sequence of instants
// twice and asserts identical take/deny decisions — the bucket's state
// is a pure function of the instants it is shown.
func TestTokenBucketDeterminism(t *testing.T) {
	run := func() []bool {
		base := time.Unix(1000, 0)
		b := NewTokenBucket(10, 20, base) // 10 tokens/s, capacity 20, starts full
		var got []bool
		got = append(got, b.Take(base, 15))                           // 20 -> 5
		got = append(got, b.Take(base, 10))                           // 5 < 10: deny
		got = append(got, b.Take(base.Add(500*time.Millisecond), 10)) // 5+5 = 10: take -> 0
		got = append(got, b.Take(base.Add(600*time.Millisecond), 2))  // 1 < 2: deny
		got = append(got, b.Take(base.Add(5*time.Second), 20))        // capped at 20: take
		got = append(got, b.Take(base.Add(5*time.Second), 1))         // 0 < 1: deny
		return got
	}
	want := []bool{true, false, true, false, true, false}
	for round := 0; round < 2; round++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d step %d: got %v, want %v", round, i, got[i], want[i])
			}
		}
	}
}

func TestTokenBucketWaitFor(t *testing.T) {
	base := time.Unix(0, 0)
	b := NewTokenBucket(100, 100, base)
	if !b.Take(base, 100) {
		t.Fatal("full bucket should grant its capacity")
	}
	if w := b.WaitFor(50); w != 500*time.Millisecond {
		t.Fatalf("WaitFor(50) at rate 100/s = %v, want 500ms", w)
	}
	// Oversized costs are capped at capacity, so the wait is bounded.
	if w := b.WaitFor(1e9); w != time.Second {
		t.Fatalf("oversized WaitFor = %v, want 1s (capacity/rate)", w)
	}
}

// admitLabeled queues admissions one at a time (each from its own
// goroutine, confirmed enqueued before the next starts) and returns a
// channel that yields labels in grant order plus releases each grant
// as soon as it is recorded.
func admitLabeled(t *testing.T, s *Scheduler, specs []struct {
	class string
	label string
	cost  int64
}) <-chan string {
	t.Helper()
	order := make(chan string, len(specs))
	for _, sp := range specs {
		sp := sp
		before := s.Queued(sp.class)
		go func() {
			release, err := s.Admit(context.Background(), sp.class, sp.cost)
			if err != nil {
				t.Errorf("admit %s: %v", sp.label, err)
				return
			}
			order <- sp.label
			release()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for s.Queued(sp.class) <= before {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %s never enqueued", sp.label)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return order
}

// TestWeightedFairOrder pins the stride-scheduling grant order: with
// ingest weight 1 and query weight 4 at equal cost, a backlog of
// 3+3 drains i1, q1, q2, q3, i2, i3 — the first grant goes to ingest
// on the lexicographic tie-break, then queries spend their 4x share.
func TestWeightedFairOrder(t *testing.T) {
	s := New(Options{
		Concurrency: 1,
		Classes: map[string]ClassOptions{
			"ingest": {Weight: 1},
			"query":  {Weight: 4},
		},
	}, sim.WallClock{}, metrics.NewRegistry(), "test.")

	// Hold the only slot via a third class so every admission below
	// queues while ingest and query still start at the same pass.
	blockerRelease, err := s.Admit(context.Background(), "relay", 1)
	if err != nil {
		t.Fatal(err)
	}

	order := admitLabeled(t, s, []struct {
		class string
		label string
		cost  int64
	}{
		{"ingest", "i1", 100}, {"ingest", "i2", 100}, {"ingest", "i3", 100},
		{"query", "q1", 100}, {"query", "q2", 100}, {"query", "q3", 100},
	})

	blockerRelease()
	want := []string{"i1", "q1", "q2", "q3", "i2", "i3"}
	for i, w := range want {
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("grant %d: got %s, want %s", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d (%s) never arrived", i, w)
		}
	}
}

// TestQueryNotStarved floods one node's scheduler with a deep ingest
// backlog and asserts a late-arriving query is granted near the front
// of the line — the weighted queue, not arrival order, decides.
func TestQueryNotStarved(t *testing.T) {
	s := New(DefaultOptions(), sim.WallClock{}, metrics.NewRegistry(), "test.")
	s.opts.Concurrency = 1

	blockerRelease, err := s.Admit(context.Background(), "ingest", 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]struct {
		class string
		label string
		cost  int64
	}, 0, 41)
	for i := 0; i < 40; i++ {
		specs = append(specs, struct {
			class string
			label string
			cost  int64
		}{"ingest", "ingest", 4096})
	}
	specs = append(specs, struct {
		class string
		label string
		cost  int64
	}{"query", "query", 64})
	order := admitLabeled(t, s, specs)

	blockerRelease()
	pos := -1
	for i := 0; i < len(specs); i++ {
		select {
		case got := <-order:
			if got == "query" {
				pos = i
			}
		case <-time.After(5 * time.Second):
			t.Fatal("backlog never drained")
		}
		if pos >= 0 {
			break
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("query granted at position %d behind a 40-deep ingest backlog; want within the first 3 grants", pos)
	}
}

// TestQueueOverflowRejects asserts the fail-fast path: once a class's
// waiter queue is at its limit, further admissions return
// ErrOverloaded immediately instead of queueing.
func TestQueueOverflowRejects(t *testing.T) {
	s := New(Options{
		Concurrency: 1,
		Classes:     map[string]ClassOptions{"ingest": {QueueLimit: 2}},
	}, sim.WallClock{}, metrics.NewRegistry(), "test.")
	release, err := s.Admit(context.Background(), "ingest", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	for i := 0; i < 2; i++ {
		go func() {
			r, err := s.Admit(context.Background(), "ingest", 1)
			if err == nil {
				defer r()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued("ingest") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never enqueued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := s.Admit(context.Background(), "ingest", 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow admission: got %v, want ErrOverloaded", err)
	}
}

// TestRateLimitVirtualClock drives a rate-limited class on a virtual
// clock: a blocked admission is granted exactly when the advanced
// clock has refilled the bucket, with no wall-time dependence.
func TestRateLimitVirtualClock(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(2000, 0))
	s := New(Options{
		Concurrency: 4,
		Classes:     map[string]ClassOptions{"ingest": {Rate: 10, Burst: 10}},
	}, clock, metrics.NewRegistry(), "test.")

	r1, err := s.Admit(context.Background(), "ingest", 10)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r2, err := s.Admit(context.Background(), "ingest", 10)
		if err == nil {
			r2()
		}
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued("ingest") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second admission never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("second admission granted with an empty bucket")
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(time.Second) // refills 10 tokens
	r1()                       // release triggers a dispatch pass at the new instant
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second admission not granted after refill")
	}
}

// TestAdmitContextCancel asserts a queued waiter abandons cleanly.
func TestAdmitContextCancel(t *testing.T) {
	s := New(Options{Concurrency: 1}, sim.WallClock{}, metrics.NewRegistry(), "test.")
	release, err := s.Admit(context.Background(), "ingest", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, "ingest", 1)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued("ingest") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if got := s.Queued("ingest"); got != 0 {
		t.Fatalf("cancelled waiter left %d queued", got)
	}
}
