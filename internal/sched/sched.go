// Package sched is the node-level admission scheduler of the F2C
// hierarchy: a weighted-fair queue across the wire traffic classes
// (ingest, query, relay) with optional token-bucket rate limits per
// class, gating each node's handler path.
//
// The tcpnet transport already isolates the classes on the wire — own
// connections, own flow-control windows — but socket isolation only
// decides who gets bytes onto the link, not whose work the node does
// first. Under a city-scale ingest burst the scarce resource is the
// node itself: CPU for decode/dedup/describe, shard locks, store
// appends. The scheduler arbitrates that resource by admission:
// every message handled by a node first acquires a grant, grants are
// bounded (Concurrency), and when demand exceeds supply the backlog
// drains by stride scheduling — each class consumes capacity in
// proportion to its weight, so a query never waits behind an unbounded
// ingest backlog.
//
// Admission cost is the message's payload size in bytes, so "share"
// means bytes of handler work, and a class full of small latency-
// sensitive requests (queries) naturally outruns a class of bulk
// batches even at equal weight. Blocking is the backpressure
// mechanism: a held grant keeps the transport's per-class dispatch
// slot busy, the peer's flow-control window fills, and the sender's
// flush machinery defers — no new error path needed. Only when a
// class's waiter queue itself overflows does Admit fail fast with a
// typed overload rejection, so a melting node sheds admission work in
// O(1) instead of queueing unboundedly.
package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	"f2c/internal/metrics"
	"f2c/internal/sim"
)

// ErrOverloaded is returned by Admit when the class's waiter queue is
// full — the node is overloaded and the caller should reject rather
// than buffer. The message matches transport.ErrOverloaded so the
// rejection stays recognizable after a round-trip through a remote
// error reply.
var ErrOverloaded = errors.New("sched: admission queue full: node overloaded")

// ClassOptions tunes one traffic class.
type ClassOptions struct {
	// Weight is the class's relative share of handler capacity under
	// contention (default 1). Shares are in admission-cost units
	// (payload bytes), so weight 4 means "may consume 4x the bytes of
	// a weight-1 class while both are backlogged".
	Weight int
	// Rate, when > 0, rate-limits the class with a token bucket
	// refilling Rate cost units (payload bytes) per second. Admissions
	// beyond the rate wait for tokens; zero disables the limit.
	Rate float64
	// Burst is the bucket capacity (default max(Rate, 1)): how much
	// the class may burst above the sustained rate.
	Burst float64
	// QueueLimit bounds how many admissions may wait on the class
	// (default 256); beyond it Admit rejects with ErrOverloaded.
	QueueLimit int
}

// Options configures a Scheduler.
type Options struct {
	// Classes maps class names (transport.ClassNameOf) to their
	// tuning. Classes not listed get weight 1, no rate limit.
	Classes map[string]ClassOptions
	// Concurrency bounds how many admissions may hold a grant at once
	// (default 4) — the node's handler parallelism under overload.
	Concurrency int
}

// DefaultOptions returns the preset class mix: queries weighted 8x and
// relays 4x over bulk ingest, no rate limits. Under a saturating
// ingest burst the read path keeps 8/13 of the node's admission
// capacity — latency-sensitive traffic never starves.
func DefaultOptions() Options {
	return Options{
		Classes: map[string]ClassOptions{
			"ingest": {Weight: 1},
			"query":  {Weight: 8},
			"relay":  {Weight: 4},
		},
	}
}

// TokenBucket is a deterministic token bucket: refills are computed
// from the clock instants the caller passes in, so virtual-clock tests
// replay exactly.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket refilling rate tokens/second with the
// given capacity (capacity < rate is raised to max(rate, 1)). The
// bucket starts full at the given instant.
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if burst < 1 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// Refill advances the bucket to the given instant.
func (b *TokenBucket) Refill(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Tokens reports the current level (after the last Refill).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// Has reports whether cost tokens are available. Costs above the
// bucket capacity are granted at full capacity, so one oversized
// admission cannot jam the class forever.
func (b *TokenBucket) Has(cost float64) bool {
	if cost > b.burst {
		cost = b.burst
	}
	return b.tokens >= cost
}

// Take refills to now and consumes cost tokens if available (capped at
// the bucket capacity), reporting whether it did.
func (b *TokenBucket) Take(now time.Time, cost float64) bool {
	b.Refill(now)
	if !b.Has(cost) {
		return false
	}
	if cost > b.burst {
		cost = b.burst
	}
	b.tokens -= cost
	return true
}

// WaitFor returns how long until cost tokens will be available at the
// sustained rate (zero when they already are).
func (b *TokenBucket) WaitFor(cost float64) time.Duration {
	if cost > b.burst {
		cost = b.burst
	}
	deficit := cost - b.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// waiter is one blocked admission.
type waiter struct {
	ready   chan struct{}
	cost    float64
	since   time.Time
	granted bool
}

// classState is one class's queue, stride pass and bucket.
type classState struct {
	name    string
	weight  float64
	limit   int
	bucket  *TokenBucket // nil = unlimited
	waiters []*waiter
	pass    float64 // stride virtual time: grows by cost/weight per grant

	admitted *metrics.Counter
	rejected *metrics.Counter
	queued   *metrics.Gauge
	wait     *metrics.Histogram
}

// Scheduler is a weighted-fair admission gate. Safe for concurrent
// use.
type Scheduler struct {
	mu       sync.Mutex
	opts     Options
	clock    sim.Clock
	classes  map[string]*classState
	reg      *metrics.Registry
	prefix   string
	inflight int
	vfloor   float64 // pass of the last grant: joining classes start here
	inflt    *metrics.Gauge
	timer    *time.Timer // wall-clock pump for token waits
}

// New builds a scheduler. The clock drives token-bucket refills
// (virtual in tests); the registry receives per-class gauges and
// counters under prefix (e.g. "fog1/d01-s01.sched.").
func New(opts Options, clock sim.Clock, reg *metrics.Registry, prefix string) *Scheduler {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if clock == nil {
		clock = sim.WallClock{}
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Scheduler{
		opts:    opts,
		clock:   clock,
		classes: make(map[string]*classState),
		reg:     reg,
		prefix:  prefix,
		inflt:   reg.Gauge(prefix + "inflight"),
	}
	for name := range opts.Classes {
		s.class(name)
	}
	return s
}

// class returns (creating on first use) a class's state.
func (s *Scheduler) class(name string) *classState {
	cs, ok := s.classes[name]
	if ok {
		return cs
	}
	co := s.opts.Classes[name]
	if co.Weight <= 0 {
		co.Weight = 1
	}
	if co.QueueLimit <= 0 {
		co.QueueLimit = 256
	}
	cs = &classState{
		name:     name,
		weight:   float64(co.Weight),
		limit:    co.QueueLimit,
		admitted: s.reg.Counter(s.prefix + name + ".admitted"),
		rejected: s.reg.Counter(s.prefix + name + ".rejected"),
		queued:   s.reg.Gauge(s.prefix + name + ".queued"),
		wait:     s.reg.Histogram(s.prefix + name + ".wait"),
	}
	if co.Rate > 0 {
		cs.bucket = NewTokenBucket(co.Rate, co.Burst, s.clock.Now())
	}
	s.classes[name] = cs
	return cs
}

// Admit blocks until the scheduler grants the admission (or the
// context ends) and returns the release function the caller must
// invoke when the handler work is done. Cost is the admission's share
// charge — payload bytes (values < 1 are raised to 1). When the
// class's waiter queue is full, Admit fails fast with ErrOverloaded.
func (s *Scheduler) Admit(ctx context.Context, class string, cost int64) (func(), error) {
	if cost < 1 {
		cost = 1
	}
	now := s.clock.Now()
	s.mu.Lock()
	cs := s.class(class)
	if len(cs.waiters) >= cs.limit {
		cs.rejected.Inc()
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{}), cost: float64(cost), since: now}
	cs.waiters = append(cs.waiters, w)
	cs.queued.Set(int64(len(cs.waiters)))
	s.dispatchLocked(now)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return s.releaseFunc(), nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; honor it — the caller
			// decides whether to still do the work.
			s.mu.Unlock()
			return s.releaseFunc(), nil
		}
		for i, q := range cs.waiters {
			if q == w {
				cs.waiters = append(cs.waiters[:i], cs.waiters[i+1:]...)
				break
			}
		}
		cs.queued.Set(int64(len(cs.waiters)))
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent grant release.
func (s *Scheduler) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inflight--
			s.inflt.Set(int64(s.inflight))
			s.dispatchLocked(s.clock.Now())
			s.mu.Unlock()
		})
	}
}

// dispatchLocked grants free slots to the backlogged class with the
// smallest stride pass (ties broken by name for determinism), skipping
// classes whose token bucket is dry. When every backlogged class is
// waiting on tokens, a wall-clock pump is armed for the earliest
// refill. Caller holds s.mu.
func (s *Scheduler) dispatchLocked(now time.Time) {
	for s.inflight < s.opts.Concurrency {
		var best *classState
		minWait := time.Duration(-1)
		for _, cs := range s.classes {
			if len(cs.waiters) == 0 {
				continue
			}
			if cs.bucket != nil {
				cs.bucket.Refill(now)
				if !cs.bucket.Has(cs.waiters[0].cost) {
					if w := cs.bucket.WaitFor(cs.waiters[0].cost); minWait < 0 || w < minWait {
						minWait = w
					}
					continue
				}
			}
			if best == nil || cs.pass < best.pass || (cs.pass == best.pass && cs.name < best.name) {
				best = cs
			}
		}
		if best == nil {
			if minWait >= 0 {
				s.pumpAfterLocked(minWait)
			}
			return
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		best.queued.Set(int64(len(best.waiters)))
		if best.bucket != nil {
			best.bucket.Take(now, w.cost)
		}
		// Stride accounting: a joining class starts at the grant floor
		// so an idle class cannot bank credit and monopolize later.
		if best.pass < s.vfloor {
			best.pass = s.vfloor
		}
		best.pass += w.cost / best.weight
		s.vfloor = best.pass - w.cost/best.weight
		s.inflight++
		s.inflt.Set(int64(s.inflight))
		best.admitted.Inc()
		best.wait.Observe(now.Sub(w.since))
		w.granted = true
		close(w.ready)
	}
}

// pumpAfterLocked (re)arms the token-wait pump. The wait is computed
// from the bucket's sustained rate; the pump just re-runs dispatch, so
// firing early or late is harmless. Caller holds s.mu.
func (s *Scheduler) pumpAfterLocked(wait time.Duration) {
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timer = time.AfterFunc(wait, func() {
		s.mu.Lock()
		s.dispatchLocked(s.clock.Now())
		s.mu.Unlock()
	})
}

// Queued reports how many admissions are currently waiting on a class.
func (s *Scheduler) Queued(class string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs, ok := s.classes[class]; ok {
		return len(cs.waiters)
	}
	return 0
}

// Inflight reports how many grants are currently held.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}
