package fognode

import (
	"context"
	"fmt"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/sim"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// blackholeParent acknowledges every upward send instantly, so the
// drain between measurement windows is free of network modeling.
type blackholeParent struct{}

func (blackholeParent) Send(context.Context, transport.Message) ([]byte, error) {
	return []byte("ok"), nil
}

// BenchmarkIngestWAL measures the acquisition pipeline's ingest cost
// with durability off (the default in-memory node) and on (every
// accepted batch journaled through the write-ahead log) — the
// headline overhead number of the recovery subsystem. Batches carry
// 10 readings; the pending buffer is drained to an instant parent
// every 512 batches outside the timer, so the measured op is the
// ingest path alone and the durable/off delta isolates the journal
// append.
func BenchmarkIngestWAL(b *testing.B) {
	for _, mode := range []string{"off", "durable"} {
		b.Run(mode, func(b *testing.B) {
			cfg := Config{
				Spec:      fog1Spec(),
				Clock:     sim.NewVirtualClock(t0),
				Transport: blackholeParent{},
				Codec:     aggregate.CodecNone,
			}
			if mode == "durable" {
				cfg.Durability = &wal.Config{Dir: b.TempDir(), SnapshotEvery: -1}
			}
			n, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch := &model.Batch{
				NodeID: "edge", TypeName: "traffic", Category: model.CategoryUrban, Collected: t0,
			}
			for i := 0; i < 10; i++ {
				batch.Readings = append(batch.Readings, model.Reading{
					SensorID: fmt.Sprintf("traffic/%d", i), TypeName: "traffic",
					Category: model.CategoryUrban, Time: t0.Add(time.Duration(i) * time.Millisecond),
					Value: float64(i), Unit: "veh",
				})
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Ingest(batch); err != nil {
					b.Fatal(err)
				}
				if i%512 == 511 {
					b.StopTimer()
					if err := n.Flush(ctx); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}
