package fognode

import (
	"context"
	"sync"
	"time"
)

// lifecycle holds the background-flusher state shared by Node and the
// cloud node.
type lifecycle struct {
	mu      sync.Mutex
	running bool
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

func newLifecycle() *lifecycle {
	return &lifecycle{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// begin marks the worker started; returns false if already started or
// already stopped.
func (l *lifecycle) begin() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.running || l.stopped {
		return false
	}
	l.running = true
	return true
}

// end signals the worker to stop and waits for it if it was running.
func (l *lifecycle) end() {
	l.mu.Lock()
	wasRunning := l.running
	alreadyStopped := l.stopped
	l.running = false
	l.stopped = true
	l.mu.Unlock()
	if !alreadyStopped {
		close(l.stop)
	}
	if wasRunning {
		<-l.done
	}
}

// Start launches the background flusher, which moves pending data
// upward every FlushInterval — the paper's periodic upward data
// movement whose frequency is a tunable of the architecture. Start is
// idempotent; starting after Close is a no-op.
func (n *Node) Start() {
	if !n.lc.begin() {
		return
	}
	go n.run()
}

// run is the flusher goroutine. It exits when Close is called. With
// the adaptive controller, each round re-reads the controller's
// current interval, so the cadence accelerates when the pipe is
// healthy and backs off under backpressure; without it, the fixed
// FlushInterval applies.
func (n *Node) run() {
	defer close(n.lc.done)
	next := func() time.Duration {
		if n.ctl != nil {
			return n.ctl.interval()
		}
		return n.cfg.FlushInterval
	}
	timer := time.NewTimer(next())
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			// Flush errors leave data queued for the next tick;
			// the flush-error counter records them for operators.
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.FlushInterval)
			_ = n.Flush(ctx)
			cancel()
			timer.Reset(next())
		case <-n.lc.stop:
			return
		}
	}
}

// Close stops the background flusher (if running), waits for it to
// exit, then performs a final synchronous flush so no pending data is
// lost on shutdown. A durable node additionally writes a final
// checkpoint and closes its journal, so the next start recovers from
// the snapshot alone. Safe to call multiple times.
func (n *Node) Close(ctx context.Context) error {
	n.lc.end()
	var err error
	if n.cfg.Spec.Parent != "" || n.PendingBatches() > 0 {
		err = n.Flush(ctx)
	}
	if n.journal != nil {
		if cerr := n.Checkpoint(); err == nil {
			err = cerr
		}
		if cerr := n.journal.close(); err == nil {
			err = cerr
		}
	}
	if n.segStore != nil {
		if cerr := n.segStore.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Discard tears the node down with crash semantics: the background
// flusher (if any) is stopped, but nothing is flushed or
// checkpointed — the journal file handle is simply released, leaving
// the on-disk state exactly as the last append left it. Used when an
// instance is replaced by a restart simulation; a real crash gets the
// same on-disk picture without the courtesy of the close.
func (n *Node) Discard() {
	n.lc.end()
	if n.journal != nil {
		_ = n.journal.close()
	}
	if n.segStore != nil {
		n.segStore.Discard()
	}
}
