package fognode

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

// TestCustomStagesRun wires a scenario-specific filtering stage and an
// enrichment stage into the pipeline and checks they run after the
// built-ins and before storage.
func TestCustomStagesRun(t *testing.T) {
	drop := StageFunc("drop-negative", func(_ *StageContext, b *model.Batch) (*model.Batch, error) {
		out := *b
		out.Readings = nil
		for _, r := range b.Readings {
			if r.Value >= 0 {
				out.Readings = append(out.Readings, r)
			}
		}
		return &out, nil
	})
	enrich := StageFunc("unit-enrich", func(_ *StageContext, b *model.Batch) (*model.Batch, error) {
		out := b.Clone()
		for i := range out.Readings {
			out.Readings[i].Unit = "C"
		}
		return out, nil
	})
	n, err := New(Config{
		Spec:   fog1Spec(),
		Clock:  sim.NewVirtualClock(t0),
		Stages: []Stage{drop, enrich},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(batchOf(map[string]float64{"a": -5, "b": 20}, t0)); err != nil {
		t.Fatal(err)
	}
	got := n.Query("temperature", t0, t0.Add(time.Hour))
	if len(got) != 1 {
		t.Fatalf("stored %d readings, want 1 (negative filtered)", len(got))
	}
	if got[0].Value != 20 || got[0].Unit != "C" {
		t.Errorf("stored reading = %+v, want enriched value 20", got[0])
	}
}

// TestStageErrorAbortsIngest checks a failing stage aborts the ingest
// with the stage name in the error and stores nothing.
func TestStageErrorAbortsIngest(t *testing.T) {
	boom := errors.New("boom")
	n, err := New(Config{
		Spec:  fog1Spec(),
		Clock: sim.NewVirtualClock(t0),
		Stages: []Stage{StageFunc("exploding", func(*StageContext, *model.Batch) (*model.Batch, error) {
			return nil, boom
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	if !errors.Is(err, boom) {
		t.Fatalf("ingest err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "exploding") {
		t.Errorf("err %q does not name the failing stage", err)
	}
	if got := n.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 0 {
		t.Errorf("stored %d readings after aborted ingest", len(got))
	}
	if n.PendingBatches() != 0 {
		t.Error("aborted ingest left pending data")
	}
}

// TestStageContextScoreReachesTags checks a custom stage can refine
// the quality score the description phase records.
func TestStageContextScoreReachesTags(t *testing.T) {
	n, err := New(Config{
		Spec:  fog1Spec(),
		Clock: sim.NewVirtualClock(t0),
		Stages: []Stage{StageFunc("downgrade", func(sc *StageContext, b *model.Batch) (*model.Batch, error) {
			sc.Score = 0.25
			return b, nil
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(batchOf(map[string]float64{"a": 20}, t0)); err != nil {
		t.Fatal(err)
	}
	tags, ok := n.Tags("temperature")
	if !ok || tags.QualityScore != 0.25 {
		t.Errorf("tags = %+v ok=%v, want quality score 0.25", tags, ok)
	}
}

// TestRequeueReappliesPendingBound reproduces the parent-outage growth
// bug: data ingested while a flush is in flight merges with the
// requeued failed batch, and the MaxPendingReadings bound must be
// re-applied so the buffer cannot exceed the configured limit.
func TestRequeueReappliesPendingBound(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	var n *Node
	net := transport.NewSimNetwork()
	fail := true
	var got *model.Batch
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		if fail {
			// Simulate concurrent arrivals during the in-flight flush:
			// these land in pending before the failed batch requeues.
			for i := 0; i < 3; i++ {
				b := batchOf(map[string]float64{"s": float64(10 + i)}, t0.Add(time.Duration(i+1)*time.Minute))
				if err := n.Ingest(b); err != nil {
					return nil, err
				}
			}
			return nil, errors.New("parent outage")
		}
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		got = b
		return []byte("ok"), nil
	}))
	var err error
	n, err = New(Config{
		Spec:               fog1Spec(),
		Clock:              clock,
		Transport:          net,
		Codec:              aggregate.CodecNone,
		MaxPendingReadings: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b := batchOf(map[string]float64{"s": float64(i)}, t0.Add(time.Duration(i)*time.Second))
		if err := n.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("expected flush failure")
	}
	// 3 failed + 3 ingested-during-flush readings merged: the bound
	// must shed the 3 oldest instead of keeping all 6.
	if shed := n.ShedReadings(); shed != 3 {
		t.Errorf("shed = %d, want 3 (requeue must re-apply the bound)", shed)
	}
	fail = false
	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Readings) != 3 {
		t.Fatalf("recovered batch = %+v, want the 3 newest readings", got)
	}
	if got.Readings[0].Value != 10 || got.Readings[2].Value != 12 {
		t.Errorf("kept values = %v..%v, want 10..12 (newest kept, oldest shed)",
			got.Readings[0].Value, got.Readings[2].Value)
	}
}
