package fognode

import (
	"sync"

	"f2c/internal/describe"
	"f2c/internal/model"
	"f2c/internal/shard"
)

// defaultPendingShards is the pending-buffer shard count used when
// Config.PendingShards is zero. Sixteen shards keep contention
// negligible for the catalog's ~21 sensor types while staying cheap
// to scan on flush.
const defaultPendingShards = 16

// pendingShard guards one hash slice of the per-type pending buffers
// and description tags, so concurrent Ingest calls on different
// sensor types proceed without contending on a node-wide lock.
type pendingShard struct {
	mu      sync.Mutex
	pending map[string]*model.Batch
	tags    map[string]describe.Tags
}

// newPendingShards allocates n shards rounded up to a power of two
// (n <= 0 selects the default).
func newPendingShards(n int) []pendingShard {
	if n <= 0 {
		n = defaultPendingShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	shards := make([]pendingShard, size)
	for i := range shards {
		shards[i].pending = make(map[string]*model.Batch)
		shards[i].tags = make(map[string]describe.Tags)
	}
	return shards
}

// shardFor returns the shard owning a type name.
func (n *Node) shardFor(typeName string) *pendingShard {
	return &n.shards[shard.FNV32a(typeName)&n.shardMask]
}
