package fognode

import (
	"sync"

	"f2c/internal/describe"
	"f2c/internal/model"
	"f2c/internal/shard"
)

// defaultPendingShards is the pending-buffer shard count used when
// Config.PendingShards is zero. Sixteen shards keep contention
// negligible for the catalog's ~21 sensor types while staying cheap
// to scan on flush.
const defaultPendingShards = 16

// sealedBatch pairs a batch with the delivery sequence it was (or
// will be) sealed under. A sequence of zero means "not yet assigned";
// once a batch has been sent under a sequence, the pairing is frozen
// so retries after a lost acknowledgement present the same identity
// and the receiver's replay filter can drop the duplicate.
type sealedBatch struct {
	b   *model.Batch
	seq uint64
}

// pendingShard guards one hash slice of the per-type pending buffers,
// retry queues and description tags, so concurrent Ingest calls on
// different sensor types proceed without contending on a node-wide
// lock. pending accumulates fresh readings per type; retry holds
// batches whose upward send failed, FIFO in collection order, each
// frozen with its delivery sequence.
type pendingShard struct {
	mu      sync.Mutex
	pending map[string]*model.Batch
	retry   map[string][]sealedBatch
	tags    map[string]describe.Tags
	// degraded holds per-type window summaries of readings the
	// MaxPendingReadings bound folded away under degrade-to-summary
	// (and summaries pushed up from children, awaiting re-emission);
	// sumRetry holds sealed summary pushes whose upward send failed.
	degraded map[string]*degradeBuf
	sumRetry map[string][]sealedSummary
	// alerts holds sealed continuous-query alert pushes awaiting
	// upward delivery — this node's own fires plus pushes absorbed
	// verbatim from children, FIFO in seal order.
	alerts map[string][]sealedAlert
}

// newPendingShards allocates n shards rounded up to a power of two
// (n <= 0 selects the default).
func newPendingShards(n int) []pendingShard {
	if n <= 0 {
		n = defaultPendingShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	shards := make([]pendingShard, size)
	for i := range shards {
		shards[i].pending = make(map[string]*model.Batch)
		shards[i].retry = make(map[string][]sealedBatch)
		shards[i].tags = make(map[string]describe.Tags)
		shards[i].degraded = make(map[string]*degradeBuf)
		shards[i].sumRetry = make(map[string][]sealedSummary)
		shards[i].alerts = make(map[string][]sealedAlert)
	}
	return shards
}

// shardFor returns the shard owning a type name.
func (n *Node) shardFor(typeName string) *pendingShard {
	return &n.shards[shard.FNV32a(typeName)&n.shardMask]
}
