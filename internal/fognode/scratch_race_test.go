package fognode

// Race coverage for the zero-allocation wire path: pooled codec state
// (flate/gzip writers, inflaters, wire scratch) driven from many
// concurrent flush workers and handlers at once. Meaningful under
// `go test -race`; conservation assertions also catch buffer-aliasing
// bugs (a reused payload buffer observed by two sends would corrupt a
// batch and fail decode or lose readings) without the detector.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

// TestConcurrentFlushPooledCodecsRace runs overlapping Flush calls,
// each fanning out to FlushWorkers sealing goroutines, for every
// compressing codec, with a decoding parent. Every reading ingested
// must arrive at the parent exactly once: a pooled encoder or scratch
// buffer shared between two workers would break payload bytes (decode
// error) or deliver a stale batch (conservation failure).
func TestConcurrentFlushPooledCodecsRace(t *testing.T) {
	for _, codec := range []aggregate.Codec{aggregate.CodecFlate, aggregate.CodecGzip, aggregate.CodecZip} {
		t.Run(codec.String(), func(t *testing.T) {
			var delivered atomic.Int64
			net := transport.NewSimNetwork()
			net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
				b, gotCodec, err := protocol.DecodeBatchPayload(msg.Payload)
				if err != nil {
					return nil, err
				}
				if gotCodec != codec {
					t.Errorf("delivered codec %v, want %v", gotCodec, codec)
				}
				delivered.Add(int64(len(b.Readings)))
				return []byte("ok"), nil
			}))
			n, err := New(Config{
				Spec: topology.NodeSpec{
					ID: "fog1/race", Layer: topology.LayerFog1, Parent: "fog2/d01", Name: "race",
				},
				Clock:        sim.NewVirtualClock(t0),
				Transport:    net,
				Codec:        codec,
				FlushWorkers: 8,
			})
			if err != nil {
				t.Fatal(err)
			}

			const perWorker = 60
			ctx := context.Background()
			var wg sync.WaitGroup
			var ingested atomic.Int64
			for w := 0; w < len(raceTypes)*2; w++ {
				rt := raceTypes[w%len(raceTypes)]
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						at := t0.Add(time.Duration(worker*perWorker+i) * time.Millisecond)
						b := raceBatch(rt.name, rt.cat, worker, rt.val(i), at)
						if err := n.Ingest(b); err != nil {
							t.Errorf("ingest: %v", err)
							return
						}
						ingested.Add(1)
						if i%10 == 0 {
							if err := n.Flush(ctx); err != nil {
								t.Errorf("flush: %v", err)
								return
							}
						}
					}
				}(w)
			}
			// Competing whole-node flushers so several flush()
			// invocations (each with its own worker pool drawing
			// scratch from the shared pool) overlap.
			stop := make(chan struct{})
			for f := 0; f < 3; f++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							_ = n.Flush(ctx)
						}
					}
				}()
			}
			// Stop the competing flushers once every ingest is
			// accounted for, then wait out all goroutines.
			for ingested.Load() < int64(len(raceTypes)*2*perWorker) {
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()

			if err := n.Flush(ctx); err != nil {
				t.Fatalf("final flush: %v", err)
			}
			want := int64(len(raceTypes) * 2 * perWorker)
			if got := delivered.Load(); got != want {
				t.Fatalf("delivered %d readings, want %d", got, want)
			}
		})
	}
}
