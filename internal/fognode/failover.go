package fognode

import (
	"math/rand"
	"sync"
	"time"

	"f2c/internal/shard"
)

// UpstreamState labels the delivery state machine's current mode.
type UpstreamState string

const (
	// UpstreamHealthy: the parent link works; batches go straight up.
	UpstreamHealthy UpstreamState = "healthy"
	// UpstreamBackoff: recent parent failures; attempts are gated by
	// a jittered exponential backoff window.
	UpstreamBackoff UpstreamState = "backoff"
	// UpstreamRelay: the parent has failed FailoverAfter consecutive
	// times; batches are relayed through sibling fog nodes while the
	// backoff window periodically re-probes the parent for heal.
	UpstreamRelay UpstreamState = "relay"
)

// upstream is the retry/backoff/failover state machine guarding the
// node's parent link. One per node; all transitions are serialized by
// its mutex, so concurrent flush workers observe a consistent mode.
//
// The lifecycle under an outage: parent send fails -> consecutive
// failures grow a jittered exponential backoff window (base..max) ->
// after FailoverAfter consecutive failures the node enters relay mode
// and hands batches to healthy siblings (which forward them to their
// own parent) -> whenever the backoff window expires the next flush
// re-probes the parent -> a parent success resets everything to
// healthy. With RetryBase zero the machine is inert: every flush
// attempts the parent, exactly the pre-failover behavior.
type upstream struct {
	base     time.Duration
	max      time.Duration
	after    int
	siblings []string

	mu      sync.Mutex
	rng     *rand.Rand
	fails   int
	retryAt time.Time
	relay   bool
	next    int // round-robin start index into siblings
}

func newUpstream(cfg *Config) *upstream {
	// The node's identity is always mixed into the jitter seed: a
	// shared FailoverSeed (every node of a deployment gets the same
	// config) must still give every sibling a distinct jitter stream,
	// or they back off and re-probe a recovering parent in lockstep —
	// the stampede the jitter exists to prevent. FailoverSeed keeps a
	// whole run reproducible; the identity hash de-synchronizes the
	// nodes within it.
	seed := cfg.FailoverSeed ^ int64(shard.FNV32a(cfg.Spec.ID))
	return &upstream{
		base:     cfg.RetryBase,
		max:      cfg.RetryMax,
		after:    cfg.FailoverAfter,
		siblings: cfg.Siblings,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// state reports the current mode.
func (u *upstream) state() UpstreamState {
	u.mu.Lock()
	defer u.mu.Unlock()
	switch {
	case u.relay:
		return UpstreamRelay
	case u.fails > 0:
		return UpstreamBackoff
	default:
		return UpstreamHealthy
	}
}

// parentDue reports whether the next delivery should (re-)probe the
// parent: always when backoff is disabled or the link is healthy,
// otherwise only once the backoff window has expired.
func (u *upstream) parentDue(now time.Time) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.base <= 0 || u.fails == 0 {
		return true
	}
	return !now.Before(u.retryAt)
}

// attemptAllowed reports whether a flush can deliver anything at all
// right now: the parent is due, or relay mode has siblings to carry
// the batches. When false the flush defers — data stays queued and no
// attempt is burned inside the backoff window.
func (u *upstream) attemptAllowed(now time.Time) bool {
	if u.parentDue(now) {
		return true
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.relay && len(u.siblings) > 0
}

// onParentSuccess records a healed (or healthy) parent link.
func (u *upstream) onParentSuccess() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.fails = 0
	u.relay = false
	u.retryAt = time.Time{}
}

// onParentFailure records one failed parent attempt at instant now,
// arms the next backoff window, and switches to relay mode once the
// failover threshold is crossed (and siblings exist).
func (u *upstream) onParentFailure(now time.Time) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.fails++
	if u.base > 0 {
		u.retryAt = now.Add(u.backoffLocked())
	}
	if u.after > 0 && u.fails >= u.after && len(u.siblings) > 0 {
		u.relay = true
	}
}

// backoffLocked computes the jittered exponential delay for the
// current consecutive-failure count: base doubled per failure, capped
// at max, jittered uniformly over [d/2, d] so synchronized fog nodes
// do not re-probe a recovering parent in lockstep.
func (u *upstream) backoffLocked() time.Duration {
	d := u.base
	for i := 1; i < u.fails && d < u.max; i++ {
		d *= 2
	}
	if d > u.max {
		d = u.max
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(u.rng.Int63n(int64(d-half)+1))
}

// relayTargets returns the siblings to try for this delivery, rotated
// round-robin so one healthy sibling does not absorb every relayed
// batch, or nil when relay mode is off.
func (u *upstream) relayTargets() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	if !u.relay || len(u.siblings) == 0 {
		return nil
	}
	start := u.next
	u.next = (u.next + 1) % len(u.siblings)
	out := make([]string, 0, len(u.siblings))
	for i := 0; i < len(u.siblings); i++ {
		out = append(out, u.siblings[(start+i)%len(u.siblings)])
	}
	return out
}
