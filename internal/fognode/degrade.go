package fognode

import (
	"context"
	"errors"
	"sort"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/transport"
)

// Graceful degradation: when MaxPendingReadings trims a type's upward
// buffer, a degrading node folds the trimmed readings into
// per-time-window decomposable summaries (the PR 3 push-down type)
// instead of dropping them, and forwards the summaries upward under
// transport.KindSummaryPush at the next flush. An overloaded fog node
// then loses resolution, not information; the raw-shed path remains
// only as the last resort when the degrade tier itself overflows.
//
// Degraded windows live in memory only (they are the fallback for
// readings the journal has already recorded as trimmed), so a crash
// between degrade and push loses at most the degraded resolution —
// never journaled raw data.

// sealedSummary is one summary push frozen under a delivery sequence,
// sharing the node's batch sequence space so the parent's per-origin
// replay filter dedups retried pushes exactly like batches.
type sealedSummary struct {
	push protocol.SummaryPush
	seq  uint64
}

// degradeBuf accumulates one type's degraded readings as per-window
// decomposable summaries, keyed by the window's start instant
// (UnixNano).
type degradeBuf struct {
	category model.Category
	windows  map[int64]aggregate.Summary
}

// fold merges one reading into its time window. When the buffer is at
// its window cap and the reading opens a new window, it folds into the
// nearest existing window instead — coarser, still lossless in count.
func (d *degradeBuf) fold(r model.Reading, window time.Duration, maxWindows int) {
	w := int64(window)
	ws := r.Time.UnixNano()
	ws -= ((ws % w) + w) % w // floor for pre-epoch instants too
	if _, ok := d.windows[ws]; !ok && maxWindows > 0 && len(d.windows) >= maxWindows {
		nearest, found := int64(0), false
		for k := range d.windows {
			if !found || abs64(k-ws) < abs64(nearest-ws) {
				nearest, found = k, true
			}
		}
		ws = nearest
	}
	d.windows[ws] = d.windows[ws].Observe(r.Value)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// degradeLocked folds readings being trimmed from a type's buffer into
// the shard's degrade buffer. Caller holds the shard lock.
func (n *Node) degradeLocked(sh *pendingShard, typ string, cat model.Category, readings []model.Reading) {
	buf, ok := sh.degraded[typ]
	if !ok {
		buf = &degradeBuf{category: cat, windows: make(map[int64]aggregate.Summary)}
		sh.degraded[typ] = buf
	}
	window := n.cfg.DegradeWindow
	for _, r := range readings {
		buf.fold(r, window, n.cfg.MaxDegradedWindows)
	}
	n.degradedReads.Add(int64(len(readings)))
}

// sealSummaryLocked freezes a type's degrade buffer into an immutable
// push under a fresh delivery sequence, windows in time order. Caller
// holds the shard lock.
func (n *Node) sealSummaryLocked(typ string, buf *degradeBuf) sealedSummary {
	window := int64(n.cfg.DegradeWindow)
	push := protocol.SummaryPush{
		Origin:   n.cfg.Spec.ID,
		Seq:      n.seq.Add(1),
		TypeName: typ,
		Category: buf.category.String(),
		Windows:  make([]protocol.SummaryWindow, 0, len(buf.windows)),
	}
	for ws, s := range buf.windows {
		push.Windows = append(push.Windows, protocol.SummaryWindow{
			StartUnix: ws, EndUnix: ws + window, Summary: s,
		})
	}
	sort.Slice(push.Windows, func(i, j int) bool {
		return push.Windows[i].StartUnix < push.Windows[j].StartUnix
	})
	return sealedSummary{push: push, seq: push.Seq}
}

// deliverSummary sends one sealed push to the parent. Summaries never
// ride sibling relays: they exist to relieve an overload, and shifting
// them sideways would spread it.
func (n *Node) deliverSummary(ctx context.Context, ss sealedSummary) error {
	now := n.cfg.Clock.Now()
	if !n.up.parentDue(now) {
		return errDeferred
	}
	payload, err := protocol.EncodeJSON(ss.push)
	if err != nil {
		return err
	}
	msg := transport.Message{
		From:    n.cfg.Spec.ID,
		To:      n.cfg.Spec.Parent,
		Kind:    transport.KindSummaryPush,
		Class:   ss.push.Category,
		Payload: payload,
	}
	start := time.Now()
	if _, err := n.cfg.Transport.Send(ctx, msg); err == nil {
		n.up.onParentSuccess()
		if n.ctl != nil {
			n.ctl.observeRTT(time.Since(start))
		}
		n.summariesEmitted.Inc()
		n.flushedBytes.Add(msg.WireSize())
		return nil
	} else if errors.Is(err, transport.ErrBackpressure) || transport.IsOverload(err) {
		if n.ctl != nil {
			n.ctl.onBackpressure()
		}
		n.deferredFlushes.Inc()
		return errDeferred
	} else {
		n.up.onParentFailure(now)
		return err
	}
}

// requeueSummaries parks unsent pushes back on their type's summary
// retry queue, sequences frozen. The queue is bounded by
// MaxSummaryRetry; beyond it the oldest push is dropped and its folded
// readings finally counted as shed — the degrade tier is exhausted and
// raw-shed is the last resort left.
func (n *Node) requeueSummaries(typ string, pushes []sealedSummary) {
	if len(pushes) == 0 {
		return
	}
	sh := n.shardFor(typ)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := append(sh.sumRetry[typ], pushes...)
	max := n.cfg.MaxSummaryRetry
	for max > 0 && len(q) > max {
		n.shedReads.Add(q[0].push.Readings())
		q[0] = sealedSummary{}
		q = q[1:]
	}
	sh.sumRetry[typ] = q
}

// handleSummaryPush is the receiving half of degradation: a child (or
// this node's own lower tier) pushed degraded windows upward. They are
// deduped by (origin, seq) against retries, then folded into this
// node's own degrade buffer, to be re-emitted upward under this node's
// identity at its next flush — the same combine-and-forward shape the
// batch path has.
func (n *Node) handleSummaryPush(payload []byte) ([]byte, error) {
	var push protocol.SummaryPush
	if err := protocol.DecodeJSON(payload, &push); err != nil {
		return nil, err
	}
	if err := push.Validate(); err != nil {
		return nil, err
	}
	if n.replay.Seen(push.Origin, push.Seq) {
		n.dupBatches.Inc()
		return []byte("ok"), nil
	}
	cat, _ := model.ParseCategory(push.Category)
	sh := n.shardFor(push.TypeName)
	sh.mu.Lock()
	buf, ok := sh.degraded[push.TypeName]
	if !ok {
		buf = &degradeBuf{category: cat, windows: make(map[int64]aggregate.Summary)}
		sh.degraded[push.TypeName] = buf
	}
	for _, w := range push.Windows {
		s := buf.windows[w.StartUnix]
		s = s.Merge(w.Summary)
		buf.windows[w.StartUnix] = s
	}
	sh.mu.Unlock()
	n.degradedIn.Add(push.Readings())
	n.replay.Mark(push.Origin, push.Seq)
	return []byte("ok"), nil
}

// DegradedReadings reports how many buffered readings this node folded
// into summaries instead of shedding them raw.
func (n *Node) DegradedReadings() int64 { return n.degradedReads.Value() }

// SummariesEmitted reports how many degraded summary pushes this node
// delivered upward.
func (n *Node) SummariesEmitted() int64 { return n.summariesEmitted.Value() }

// DegradedInbound reports how many degraded readings arrived from
// below as summary pushes.
func (n *Node) DegradedInbound() int64 { return n.degradedIn.Value() }
