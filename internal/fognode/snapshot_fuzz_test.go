package fognode

import (
	"math/rand"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cq"
	"f2c/internal/model"
	"f2c/internal/protocol"
)

// genShardState derives a random-but-valid delivery state from a seed:
// per-type retry queues of sealed batches plus pending buffers, with
// field values chosen to round-trip the sensor wire text exactly
// (bounded strings without delimiter bytes, 5-decimal coordinates,
// integral values).
func genShardState(seed int64) (shards []pendingShard, seqCounter uint64, marks map[string][]uint64, subs []cq.SubSnapshot) {
	rng := rand.New(rand.NewSource(seed))
	shards = newPendingShards(4)
	seqCounter = uint64(rng.Int63())
	types := []string{"traffic", "noise_level", "air_quality", "parking"}

	genBatch := func(typ string, n int) *model.Batch {
		b := &model.Batch{
			NodeID:    "fog1/fuzz",
			TypeName:  typ,
			Category:  model.CategoryUrban,
			Collected: time.Unix(0, rng.Int63()),
		}
		for i := 0; i < n; i++ {
			b.Readings = append(b.Readings, model.Reading{
				SensorID: typ + "/" + string(rune('a'+rng.Intn(26))),
				TypeName: typ,
				Category: model.CategoryUrban,
				Time:     time.Unix(0, rng.Int63()),
				Value:    float64(rng.Intn(1 << 20)),
				Unit:     "u",
				Location: model.GeoPoint{
					Lat: float64(rng.Intn(9_000_000)) / 1e5,
					Lon: float64(rng.Intn(18_000_000)) / 1e5,
				},
			})
		}
		return b
	}
	for _, typ := range types[:1+rng.Intn(len(types))] {
		// Route types to shards exactly like the node would.
		target := &shards[shardIndex(typ, len(shards))]
		for g := 0; g < rng.Intn(4); g++ {
			target.retry[typ] = append(target.retry[typ], sealedBatch{
				b:   genBatch(typ, 1+rng.Intn(5)),
				seq: uint64(rng.Int63()) | 1,
			})
		}
		if rng.Intn(2) == 0 {
			target.pending[typ] = genBatch(typ, 1+rng.Intn(5))
		}
	}
	marks = make(map[string][]uint64)
	for o := 0; o < rng.Intn(4); o++ {
		origin := "origin-" + string(rune('a'+o))
		for m := 0; m < 1+rng.Intn(6); m++ {
			marks[origin] = append(marks[origin], uint64(rng.Int63())|1)
		}
	}
	// Queued continuous-query alert pushes (valid per the wire codec)
	// and subscription snapshots.
	for _, typ := range types[:rng.Intn(len(types))] {
		target := &shards[shardIndex(typ, len(shards))]
		for p := 0; p < 1+rng.Intn(3); p++ {
			push := protocol.AlertPush{
				Origin:   "fog1/fuzz",
				Seq:      uint64(rng.Int63()) | 1,
				TypeName: typ,
				Category: model.CategoryUrban.String(),
			}
			for a := 0; a < 1+rng.Intn(3); a++ {
				start := rng.Int63n(1 << 40)
				push.Alerts = append(push.Alerts, protocol.Alert{
					SubID:     "sub-" + string(rune('a'+a)),
					FiredBy:   "fog1/fuzz",
					Kind:      protocol.AlertKindWindow,
					StartUnix: start,
					EndUnix:   start + 1 + rng.Int63n(1<<20),
					Summary:   aggregate.Summary{Count: 1 + int64(rng.Intn(100)), Sum: float64(rng.Intn(1000)), Min: 1, Max: 2},
					Value:     float64(rng.Intn(100)),
				})
			}
			target.alerts[typ] = append(target.alerts[typ], sealedAlert{push: push, seq: push.Seq})
		}
	}
	for s := 0; s < rng.Intn(3); s++ {
		subs = append(subs, cq.SubSnapshot{
			Sub: cq.Subscription{
				ID:       "sub-" + string(rune('a'+s)),
				TypeName: types[rng.Intn(len(types))],
				Kind:     cq.KindWindow,
				Window:   time.Duration(1+rng.Intn(60)) * time.Minute,
			},
			Category:  model.CategoryUrban.String(),
			Panes:     []cq.Pane{{Start: rng.Int63n(1 << 40), Summary: aggregate.Summary{Count: 3, Sum: 6, Min: 1, Max: 3}}},
			Emitted:   []int64{rng.Int63n(1 << 40)},
			Watermark: rng.Int63n(1 << 40),
		})
	}
	return shards, seqCounter, marks, subs
}

// shardIndex mirrors Node.shardFor without a node.
func shardIndex(typ string, n int) int {
	var h uint32 = 2166136261
	for i := 0; i < len(typ); i++ {
		h ^= uint32(typ[i])
		h *= 16777619
	}
	return int(h) & (n - 1)
}

// FuzzSnapshotRoundTrip proves the snapshot codec is lossless over the
// delivery state and size-bounded, and that decoding arbitrary bytes
// never panics.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(42), []byte{journalVersion})
	f.Add(int64(7), []byte{journalVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x80})
	f.Add(int64(1234567), []byte("garbage snapshot bytes"))

	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		// Arbitrary bytes: must error or succeed, never panic.
		if err := decodeNodeSnapshot(raw, newRecoveryState()); err != nil {
			_ = err
		}

		shards, seqCounter, marks, subs := genShardState(seed)
		data, err := encodeNodeSnapshot(nil, seqCounter, marks, shards, subs)
		if err != nil {
			t.Fatalf("encode of a well-formed state failed: %v", err)
		}

		// Size bound: header + marks + per-entry overhead + readings +
		// cq sections.
		readings, entries, markCount, pushes, instances := 0, 0, 0, 0, 0
		for i := range shards {
			for _, q := range shards[i].retry {
				entries += len(q)
				for _, sb := range q {
					readings += len(sb.b.Readings)
				}
			}
			for _, b := range shards[i].pending {
				entries++
				readings += len(b.Readings)
			}
			for _, q := range shards[i].alerts {
				pushes += len(q)
				for _, sa := range q {
					instances += len(sa.push.Alerts)
				}
			}
		}
		for _, seqs := range marks {
			markCount += len(seqs)
		}
		bound := 64 + 64*len(marks) + 16*markCount + 128*entries + 160*readings +
			128*pushes + 160*instances + 1024*len(subs)
		if len(data) > bound {
			t.Fatalf("snapshot size %d exceeds bound %d (%d entries, %d readings, %d marks)",
				len(data), bound, entries, readings, markCount)
		}

		rs := newRecoveryState()
		if err := decodeNodeSnapshot(data, rs); err != nil {
			t.Fatalf("decode of a well-formed snapshot failed: %v", err)
		}
		if !rs.sawSeq || rs.seqCounter < seqCounter {
			t.Fatalf("seq counter = %d (saw=%v), want >= %d", rs.seqCounter, rs.sawSeq, seqCounter)
		}

		// Marks: same multiset per origin, in order.
		got := make(map[string][]uint64)
		for _, m := range rs.marks {
			got[m.origin] = append(got[m.origin], m.seq)
		}
		for origin, want := range marks {
			if len(got[origin]) != len(want) {
				t.Fatalf("origin %s: %d marks, want %d", origin, len(got[origin]), len(want))
			}
			for i := range want {
				if got[origin][i] != want[i] {
					t.Fatalf("origin %s mark %d = %d, want %d", origin, i, got[origin][i], want[i])
				}
			}
		}

		// Delivery state: per type, group sequences + readings and the
		// pending buffer must round-trip exactly.
		for i := range shards {
			sh := &shards[i]
			for typ, q := range sh.retry {
				tr := rs.types[typ]
				if tr == nil || len(tr.groups) != len(q) {
					t.Fatalf("type %s: recovered %v groups, want %d", typ, tr, len(q))
				}
				for gi := range q {
					if tr.groups[gi].seq != q[gi].seq {
						t.Fatalf("type %s group %d seq = %d, want %d", typ, gi, tr.groups[gi].seq, q[gi].seq)
					}
					assertSameReadings(t, typ, tr.groups[gi].b.Readings, q[gi].b.Readings)
				}
			}
			for typ, p := range sh.pending {
				tr := rs.types[typ]
				if tr == nil || tr.pending == nil {
					t.Fatalf("type %s: pending buffer lost", typ)
				}
				assertSameReadings(t, typ, tr.pending.Readings, p.Readings)
			}
			// Alert queues: every queued push must recover keyed by its
			// (origin, seq) with its instances intact.
			for typ, q := range sh.alerts {
				for _, sa := range q {
					got, ok := rs.alertByKey[alertKey{origin: sa.push.Origin, seq: sa.seq}]
					if !ok {
						t.Fatalf("type %s: queued push (%s, %d) lost", typ, sa.push.Origin, sa.seq)
					}
					if len(got.Alerts) != len(sa.push.Alerts) {
						t.Fatalf("type %s push %d: %d alerts, want %d", typ, sa.seq, len(got.Alerts), len(sa.push.Alerts))
					}
				}
			}
		}
		if len(rs.snapSubs) != len(subs) {
			t.Fatalf("recovered %d subscriptions, want %d", len(rs.snapSubs), len(subs))
		}
		for i := range subs {
			if rs.snapSubs[i].Sub != subs[i].Sub {
				t.Fatalf("subscription %d = %+v, want %+v", i, rs.snapSubs[i].Sub, subs[i].Sub)
			}
			if rs.snapSubs[i].Watermark != subs[i].Watermark || len(rs.snapSubs[i].Panes) != len(subs[i].Panes) {
				t.Fatalf("subscription %d state mismatch: %+v vs %+v", i, rs.snapSubs[i], subs[i])
			}
		}
	})
}

func assertSameReadings(t *testing.T, typ string, got, want []model.Reading) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("type %s: %d readings, want %d", typ, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.SensorID != w.SensorID || !g.Time.Equal(w.Time) || g.Value != w.Value ||
			g.Unit != w.Unit || g.Location != w.Location {
			t.Fatalf("type %s reading %d = %+v, want %+v", typ, i, g, w)
		}
	}
}
