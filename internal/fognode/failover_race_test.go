package fognode

// Race coverage for the backoff/failover state machine: concurrent
// ingests and flushes while the parent link flaps and deliveries fall
// over to a sibling relay. Meaningful under `go test -race` (CI runs
// it that way); the conservation assertion also catches lost or
// double-counted batches without the detector.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

// flappingNet is a concurrent scriptNet: the parent link availability
// flips from another goroutine while flush workers are delivering;
// the sibling relay path stays healthy. Unique readings are counted
// through a real ReplayFilter, exactly like the production parent.
type flappingNet struct {
	parentUp atomic.Bool

	mu     sync.Mutex
	filter *protocol.ReplayFilter
	unique int64
}

func (f *flappingNet) Send(_ context.Context, msg transport.Message) ([]byte, error) {
	switch msg.Kind {
	case transport.KindBatch:
		if !f.parentUp.Load() {
			return nil, errors.New("parent flapping")
		}
	case transport.KindRelay:
		// Sibling path: always healthy, forwards to the parent.
	default:
		return nil, errors.New("unexpected kind")
	}
	b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.filter.Seen(b.NodeID, seq) {
		f.filter.Mark(b.NodeID, seq)
		f.unique += int64(len(b.Readings))
	}
	return []byte("ok"), nil
}

// TestFailoverFlappingParentRace hammers a node with parallel ingests
// and flushes while the parent link flaps, then heals the link and
// asserts conservation: every ingested reading is delivered exactly
// once (relay and direct paths deduped by sequence).
func TestFailoverFlappingParentRace(t *testing.T) {
	net := &flappingNet{filter: protocol.NewReplayFilter(0)}
	net.parentUp.Store(true)
	n, err := New(Config{
		Spec:          fog1Spec(),
		Clock:         sim.WallClock{}, // real clock: backoff windows expire on their own
		Transport:     net,
		Codec:         aggregate.CodecNone,
		Quality:       true,
		FlushWorkers:  4,
		Siblings:      []string{"fog1/d01-s02"},
		RetryBase:     time.Millisecond,
		RetryMax:      4 * time.Millisecond,
		FailoverAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const perWorker = 150
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for _, rt := range raceTypes {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(rt struct {
				name string
				cat  model.Category
				val  func(i int) float64
			}, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					at := start.Add(time.Duration(w*perWorker+i) * time.Millisecond)
					if err := n.Ingest(raceBatch(rt.name, rt.cat, w, rt.val(i), at)); err != nil {
						t.Errorf("ingest %s: %v", rt.name, err)
						return
					}
				}
			}(rt, w)
		}
	}
	stop := make(chan struct{})
	var loops sync.WaitGroup
	loops.Add(1)
	go func() { // flusher
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = n.Flush(ctx)
			}
		}
	}()
	loops.Add(1)
	go func() { // link flapper
		defer loops.Done()
		up := false
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				net.parentUp.Store(up)
				up = !up
			}
		}
	}()
	wg.Wait()
	close(stop)
	loops.Wait()

	// Heal and drain. Backoff windows are a few milliseconds; retry
	// until everything is out.
	net.parentUp.Store(true)
	want := int64(len(raceTypes) * 2 * perWorker)
	deadline := time.After(30 * time.Second)
	for n.PendingBatches() > 0 {
		_ = n.Flush(ctx)
		select {
		case <-deadline:
			t.Fatalf("drain stalled: %d batches still pending", n.PendingBatches())
		case <-time.After(time.Millisecond):
		}
	}
	net.mu.Lock()
	unique := net.unique
	net.mu.Unlock()
	if unique != want {
		t.Errorf("delivered %d unique readings, ingested %d: flapping parent lost or duplicated data", unique, want)
	}
	if shed := n.ShedReadings(); shed != 0 {
		t.Errorf("shed %d readings with no bound configured", shed)
	}
	if n.DroppedDuringOutage() != 0 {
		t.Errorf("outage drops = %d with no bound configured", n.DroppedDuringOutage())
	}
}
