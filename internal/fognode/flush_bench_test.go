package fognode

import (
	"context"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sensor"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

// BenchmarkFlushHot drives the full hot flush path end to end: ingest
// -> pending buffer -> worker seal (encode + compress + envelope) ->
// transport -> parent open (decompress + decode). The parent endpoint
// opens every payload like a real combining node would, so both sides
// of the wire path are measured.
func BenchmarkFlushHot(b *testing.B) {
	for _, codec := range []aggregate.Codec{aggregate.CodecNone, aggregate.CodecFlate, aggregate.CodecGzip} {
		b.Run(codec.String(), func(b *testing.B) {
			net := transport.NewSimNetwork()
			net.Register("fog2/d01", transport.HandlerFunc(
				func(ctx context.Context, msg transport.Message) ([]byte, error) {
					if _, _, err := protocol.DecodeBatchPayload(msg.Payload); err != nil {
						return nil, err
					}
					return []byte("ok"), nil
				}))
			clock := sim.NewVirtualClock(t0)
			n, err := New(Config{
				Spec: topology.NodeSpec{
					ID: "fog1/bench", Layer: topology.LayerFog1, Parent: "fog2/d01", Name: "bench",
				},
				City:      "barcelona",
				Clock:     clock,
				Transport: net,
				Codec:     codec,
				Retention: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			st, err := model.TypeByName("temperature")
			if err != nil {
				b.Fatal(err)
			}
			g, err := sensor.NewGenerator(sensor.Config{
				Type: st, NodeID: "edge", Sensors: 200, Seed: 1, Redundancy: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			// A fixed set of pre-generated batches keeps generator cost
			// out of the loop while varying payload bytes.
			batches := make([]*model.Batch, 16)
			for i := range batches {
				batches[i] = g.Next(t0.Add(time.Duration(i) * time.Second))
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(10 * time.Second)
				batch := batches[i%len(batches)]
				batch.Collected = clock.Now()
				if err := n.Ingest(batch); err != nil {
					b.Fatal(err)
				}
				if err := n.Flush(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
