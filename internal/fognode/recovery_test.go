package fognode

// Durability tests: crash a durable node (rebuild it from its data
// directory without Close) and assert the recovered delivery state —
// pending buffers, retry queues, frozen delivery sequences, replay-
// filter marks, local store — matches the pre-crash committed state.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// dedupParent is a scriptable upstream endpoint with the real
// receive-path dedup: it decodes sealed batches, drops replayed
// delivery sequences, and counts every preserved reading by value.
type dedupParent struct {
	mu     sync.Mutex
	mode   string // "up", "down", "acklost"
	filter *protocol.ReplayFilter
	seen   map[float64]int
}

func newDedupParent() *dedupParent {
	return &dedupParent{mode: "up", filter: protocol.NewReplayFilter(0), seen: make(map[float64]int)}
}

func (p *dedupParent) set(mode string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode = mode
}

func (p *dedupParent) Send(_ context.Context, msg transport.Message) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if msg.Kind != transport.KindBatch {
		return nil, fmt.Errorf("dedupParent: unexpected kind %q", msg.Kind)
	}
	if p.mode == "down" {
		return nil, errors.New("parent down")
	}
	b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
	if err != nil {
		return nil, err
	}
	if !p.filter.Seen(b.NodeID, seq) {
		p.filter.Mark(b.NodeID, seq)
		for _, r := range b.Readings {
			p.seen[r.Value]++
		}
	}
	if p.mode == "acklost" {
		return nil, errors.New("ack lost after processing")
	}
	return []byte("ok"), nil
}

// counts returns a copy of the preserved value histogram.
func (p *dedupParent) counts() map[float64]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[float64]int, len(p.seen))
	for v, c := range p.seen {
		out[v] = c
	}
	return out
}

func newDurableNode(t testing.TB, dir string, tr transport.Transport, maxPending int) *Node {
	t.Helper()
	n, err := New(Config{
		Spec:               fog1Spec(),
		Clock:              sim.NewVirtualClock(t0),
		Transport:          tr,
		Codec:              aggregate.CodecNone,
		MaxPendingReadings: maxPending,
		Durability:         &wal.Config{Dir: dir, SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func typedBatch(typ string, at time.Time, vals ...float64) *model.Batch {
	b := &model.Batch{NodeID: "edge", TypeName: typ, Category: model.CategoryUrban, Collected: at}
	for i, v := range vals {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: fmt.Sprintf("%s/%d", typ, i%7), TypeName: typ, Category: model.CategoryUrban,
			Time: at.Add(time.Duration(i) * time.Millisecond), Value: v, Unit: "u",
		})
	}
	return b
}

// TestRecoveryRestoresPendingAndStore crashes a durable node with
// buffered data and asserts the rebuilt node resumes with the same
// pending state and serves the same local reads.
func TestRecoveryRestoresPendingAndStore(t *testing.T) {
	dir := t.TempDir()
	n := newDurableNode(t, dir, nil, 0)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2, 3))
	_ = n.Ingest(typedBatch("noise_level", t0.Add(time.Second), 4, 5))
	_ = n.Ingest(typedBatch("traffic", t0.Add(2*time.Second), 6))

	wantPending := n.PendingReadings()
	wantBatches := n.PendingBatches()

	re := newDurableNode(t, dir, nil, 0) // crash: no Close
	if got := re.PendingReadings(); got != wantPending {
		t.Errorf("recovered PendingReadings = %d, want %d", got, wantPending)
	}
	if got := re.PendingBatches(); got != wantBatches {
		t.Errorf("recovered PendingBatches = %d, want %d", got, wantBatches)
	}
	if got := re.Query("traffic", t0, t0.Add(time.Hour)); len(got) != 4 {
		t.Errorf("recovered store traffic readings = %d, want 4", len(got))
	}
	if r, ok := re.Latest("noise_level/0"); !ok || r.Value != 4 {
		t.Errorf("recovered Latest = %+v ok=%v", r, ok)
	}
}

// TestRecoveryDeliversExactlyOnceAfterAckLoss is the hard crash case:
// a batch is delivered but the acknowledgement is lost, the node
// crashes, and the recovered node must retry under the same frozen
// delivery sequence so the parent's replay filter drops the duplicate.
func TestRecoveryDeliversExactlyOnceAfterAckLoss(t *testing.T) {
	dir := t.TempDir()
	parent := newDedupParent()
	n := newDurableNode(t, dir, parent, 0)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2, 3))

	parent.set("acklost")
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("flush with lost ack reported success")
	}

	parent.set("up")
	re := newDurableNode(t, dir, parent, 0) // crash after the lost ack
	if re.PendingBatches() == 0 {
		t.Fatal("recovered node lost the unacknowledged batch")
	}
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for v, c := range parent.counts() {
		if c != 1 {
			t.Errorf("value %v preserved %d times, want exactly once", v, c)
		}
	}
	if got := len(parent.counts()); got != 3 {
		t.Errorf("parent preserved %d distinct readings, want 3", got)
	}
	if re.PendingBatches() != 0 {
		t.Errorf("recovered node still has %d pending batches after flush", re.PendingBatches())
	}
}

// TestRecoveryFreshSequencesNeverCollide: a recovered node's sequence
// counter continues past every sequence its predecessor used, so new
// batches are never falsely deduped against old marks.
func TestRecoveryFreshSequencesNeverCollide(t *testing.T) {
	dir := t.TempDir()
	parent := newDedupParent()
	n := newDurableNode(t, dir, parent, 0)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2))
	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	re := newDurableNode(t, dir, parent, 0)
	_ = re.Ingest(typedBatch("traffic", t0.Add(time.Second), 3, 4))
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(parent.counts()); got != 4 {
		t.Errorf("parent preserved %d distinct readings, want 4 (fresh post-recovery sequence collided?)", got)
	}
}

// TestRecoveryReplayFilterSurvivesRestart is the receive-side
// regression: a receiver that deduped a delivery, then crashed, must
// still recognize the sender's retry of that delivery after recovery
// instead of re-accepting it.
func TestRecoveryReplayFilterSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	n := newDurableNode(t, dir, nil, 0)

	child := typedBatch("traffic", t0, 10, 11)
	child.NodeID = "fog1/d01-s09"
	payload, err := (&protocol.Sealer{}).SealSeq(nil, child, aggregate.CodecNone, 77)
	if err != nil {
		t.Fatal(err)
	}
	msg := transport.Message{From: "fog1/d01-s09", To: n.ID(), Kind: transport.KindBatch, Payload: payload}
	if _, err := n.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if n.DuplicateBatches() != 0 {
		t.Fatalf("first delivery counted as duplicate")
	}

	re := newDurableNode(t, dir, nil, 0) // receiver crashes between the duplicate deliveries
	if _, err := re.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if got := re.DuplicateBatches(); got != 1 {
		t.Errorf("retry after receiver restart suppressed %d duplicates, want 1", got)
	}
	if got := re.PendingReadings(); got != 2 {
		t.Errorf("recovered pending readings = %d, want 2 (duplicate re-accepted?)", got)
	}
}

// TestRecoveryCommitAdvancesSequenceCounter: a committed sequence was
// used even when its seal record is missing (a dropped best-effort
// append), so replay must still keep the recovered counter past it —
// otherwise a fresh batch could reuse the sequence and be silently
// deduped by the parent.
func TestRecoveryCommitAdvancesSequenceCounter(t *testing.T) {
	rs := newRecoveryState()
	rec := []byte{recCommit}
	rec = wal.AppendUint64(rec, 9001)
	rec = wal.AppendString(rec, "traffic")
	if err := rs.applyRecord(rec); err != nil {
		t.Fatal(err)
	}
	if !rs.sawSeq || rs.seqCounter < 9001 {
		t.Errorf("recovered seq counter = %d (saw=%v), want >= 9001 from the orphan commit", rs.seqCounter, rs.sawSeq)
	}
}

// TestRecoveryFromCheckpoint folds state into a snapshot, appends a
// tail, and recovers snapshot + tail.
func TestRecoveryFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	parent := newDedupParent()
	parent.set("down")
	n := newDurableNode(t, dir, parent, 0)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2))
	_ = n.Flush(context.Background()) // fails, freezes a sequence on the retry queue
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = n.Ingest(typedBatch("traffic", t0.Add(time.Second), 3)) // journal tail past the snapshot

	parent.set("up")
	re := newDurableNode(t, dir, parent, 0)
	if got := re.PendingReadings(); got != 3 {
		t.Fatalf("recovered PendingReadings = %d, want 3 (snapshot + tail)", got)
	}
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(parent.counts()); got != 3 {
		t.Errorf("parent preserved %d distinct readings, want 3", got)
	}
	for v, c := range parent.counts() {
		if c != 1 {
			t.Errorf("value %v preserved %d times, want exactly once", v, c)
		}
	}
}

// TestRecoveryShedNotResurrected: readings dropped by the
// MaxPendingReadings bound must stay dropped after recovery.
func TestRecoveryShedNotResurrected(t *testing.T) {
	dir := t.TempDir()
	n := newDurableNode(t, dir, nil, 4)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2, 3))
	_ = n.Ingest(typedBatch("traffic", t0.Add(time.Second), 4, 5, 6)) // bound 4: sheds 1, 2
	if got := n.ShedReadings(); got != 2 {
		t.Fatalf("shed = %d, want 2", got)
	}
	if got := n.PendingReadings(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}

	re := newDurableNode(t, dir, nil, 4)
	if got := re.PendingReadings(); got != 4 {
		t.Errorf("recovered pending = %d, want 4 (shed readings resurrected?)", got)
	}
}

// TestRecoveryCloseThenReopen: a clean Close checkpoints, so reopening
// recovers from the snapshot alone with an empty log.
func TestRecoveryCloseThenReopen(t *testing.T) {
	dir := t.TempDir()
	parent := newDedupParent()
	parent.set("down")
	n := newDurableNode(t, dir, parent, 0)
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2, 3))
	_ = n.Close(context.Background()) // flush fails (parent down), state checkpointed

	parent.set("up")
	re := newDurableNode(t, dir, parent, 0)
	if got := re.PendingReadings(); got != 3 {
		t.Fatalf("reopened PendingReadings = %d, want 3", got)
	}
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(parent.counts()); got != 3 {
		t.Errorf("parent preserved %d distinct readings, want 3", got)
	}
}

// TestRecoveryPropertySeeded drives randomized ingest/flush/crash/
// checkpoint interleavings over a seeded workload against a flaky,
// deduping parent. Invariants, for every seed:
//
//   - a crash never changes the delivery state: the recovered node's
//     pending/retry totals equal the pre-crash totals, and every
//     buffered reading is queryable in the recovered store;
//   - after the parent heals and the node drains, every accepted
//     reading is preserved exactly once (no loss across any crash
//     point, no duplicate past the dedup filter).
//
// A failure message carries the seed that reproduces it (same
// convention as chaos.TestChaosSeedReproducible).
func TestRecoveryPropertySeeded(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			recoveryProperty(t, seed)
		})
	}
}

func recoveryProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	parent := newDedupParent()
	n := newDurableNode(t, dir, parent, 0)
	types := []string{"traffic", "noise_level", "air_quality"}
	ctx := context.Background()

	accepted := make(map[float64]bool)
	nextVal := 0.0
	at := t0
	failf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("recovery property (rerun with seed %d): %s", seed, fmt.Sprintf(format, args...))
	}

	for op := 0; op < 160; op++ {
		at = at.Add(time.Second)
		switch k := rng.Intn(10); {
		case k < 5: // ingest
			typ := types[rng.Intn(len(types))]
			vals := make([]float64, 1+rng.Intn(6))
			for i := range vals {
				nextVal++
				vals[i] = nextVal
			}
			if err := n.Ingest(typedBatch(typ, at, vals...)); err != nil {
				failf("ingest: %v", err)
			}
			for _, v := range vals {
				accepted[v] = true
			}
		case k < 8: // flush against a parent in a random mood
			parent.set([]string{"up", "down", "acklost"}[rng.Intn(3)])
			_ = n.Flush(ctx) // failures requeue; that is the point
		case k < 9: // crash + recover, then compare against pre-crash state
			wantReadings, wantBatches := n.PendingReadings(), n.PendingBatches()
			n = newDurableNode(t, dir, parent, 0)
			if got := n.PendingReadings(); got != wantReadings {
				failf("op %d: recovered PendingReadings = %d, want %d", op, got, wantReadings)
			}
			if got := n.PendingBatches(); got != wantBatches {
				failf("op %d: recovered PendingBatches = %d, want %d", op, got, wantBatches)
			}
			for _, typ := range types {
				inStore := make(map[float64]bool)
				for _, r := range n.Query(typ, t0, at.Add(time.Hour)) {
					inStore[r.Value] = true
				}
				for _, r := range pendingValues(n, typ) {
					if !inStore[r] {
						failf("op %d: buffered %s reading %v missing from recovered store", op, typ, r)
					}
				}
			}
		default: // checkpoint at a random point
			if err := n.Checkpoint(); err != nil {
				failf("checkpoint: %v", err)
			}
		}
	}

	// Heal and drain.
	parent.set("up")
	for round := 0; round < 8 && n.PendingBatches() > 0; round++ {
		if err := n.Flush(ctx); err != nil {
			failf("drain flush: %v", err)
		}
	}
	if n.PendingBatches() != 0 {
		failf("node did not drain: %d batches pending", n.PendingBatches())
	}
	got := parent.counts()
	for v := range accepted {
		switch got[v] {
		case 0:
			failf("reading %v lost (accepted but never preserved)", v)
		case 1: // exactly once
		default:
			failf("reading %v preserved %d times", v, got[v])
		}
	}
	for v := range got {
		if !accepted[v] {
			failf("phantom reading %v preserved but never accepted", v)
		}
	}
}

// pendingValues collects the values buffered for upward delivery
// (pending + retry) for one type.
func pendingValues(n *Node, typ string) []float64 {
	sh := n.shardFor(typ)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []float64
	for _, sb := range sh.retry[typ] {
		for _, r := range sb.b.Readings {
			out = append(out, r.Value)
		}
	}
	if p, ok := sh.pending[typ]; ok {
		for _, r := range p.Readings {
			out = append(out, r.Value)
		}
	}
	return out
}
