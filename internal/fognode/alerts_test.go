package fognode

// Alert-plane tests: standing subscriptions firing incrementally from
// ingest and flush, exactly-once delivery through retries and lost
// acks, crash recovery of subscriptions + queued pushes + emitted
// marks, and migration carrying live window state.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cq"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// alertSink is a scriptable upstream endpoint with the real cloud-side
// dedup: push-level replay filtering plus instance-keyed storage.
type alertSink struct {
	mu        sync.Mutex
	mode      string // "up", "down", "acklost"
	filter    *protocol.ReplayFilter
	instances map[string]protocol.Alert
	pushes    int // wire-level alert pushes that reached the handler
	dupPushes int
	nodes     map[string]transport.Handler
}

func newAlertSink() *alertSink {
	return &alertSink{
		mode:      "up",
		filter:    protocol.NewReplayFilter(0),
		instances: make(map[string]protocol.Alert),
		nodes:     make(map[string]transport.Handler),
	}
}

func (s *alertSink) set(mode string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = mode
}

func (s *alertSink) attach(id string, h transport.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[id] = h
}

func (s *alertSink) Send(ctx context.Context, msg transport.Message) ([]byte, error) {
	s.mu.Lock()
	h := s.nodes[msg.To]
	s.mu.Unlock()
	if h != nil {
		return h.Handle(ctx, msg)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == "down" {
		return nil, errors.New("parent down")
	}
	switch msg.Kind {
	case transport.KindBatch:
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
		if err != nil {
			return nil, err
		}
		s.filter.Mark(b.NodeID, seq)
	case transport.KindAlertPush:
		push, err := protocol.DecodeAlertPush(msg.Payload)
		if err != nil {
			return nil, err
		}
		s.pushes++
		if s.filter.Seen(push.Origin, push.Seq) {
			s.dupPushes++
			return []byte("ok"), nil
		}
		s.filter.Mark(push.Origin, push.Seq)
		for i := range push.Alerts {
			s.instances[push.Alerts[i].Key()] = push.Alerts[i]
		}
		// "acklost" loses only alert acks: the push is processed but
		// the sender must retry it, exercising push-level dedup.
		if s.mode == "acklost" {
			return nil, errors.New("ack lost after processing")
		}
	default:
		return nil, fmt.Errorf("alertSink: unexpected kind %q", msg.Kind)
	}
	return []byte("ok"), nil
}

func (s *alertSink) stored() []protocol.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]protocol.Alert, 0, len(s.instances))
	for _, a := range s.instances {
		out = append(out, a)
	}
	protocol.SortAlerts(out)
	return out
}

func newAlertNode(t testing.TB, sink *alertSink, clock sim.Clock, dir string) *Node {
	t.Helper()
	cfg := Config{
		Spec:      fog1Spec(),
		Clock:     clock,
		Transport: sink,
		Codec:     aggregate.CodecNone,
	}
	if dir != "" {
		cfg.Durability = &wal.Config{Dir: dir, SnapshotEvery: -1}
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func windowSub(id, typ string, w time.Duration) cq.Subscription {
	return cq.Subscription{ID: id, TypeName: typ, Kind: cq.KindWindow, Window: w}
}

func TestWindowAlertFiresAndDelivers(t *testing.T) {
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	n := newAlertNode(t, sink, clock, "")
	ctx := context.Background()

	if err := n.Subscribe(windowSub("w1", "traffic", time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(typedBatch("traffic", t0, 10, 20)); err != nil {
		t.Fatal(err)
	}
	// The window has not closed yet: flushing delivers the batch but no
	// alert.
	if err := n.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := sink.stored(); len(got) != 0 {
		t.Fatalf("alert fired before the window closed: %+v", got)
	}

	clock.Advance(2 * time.Minute)
	if err := n.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := sink.stored()
	if len(got) != 1 {
		t.Fatalf("stored %d alert instances, want 1: %+v", len(got), got)
	}
	a := got[0]
	if a.SubID != "w1" || a.FiredBy != n.ID() || a.Kind != protocol.AlertKindWindow {
		t.Fatalf("alert = %+v", a)
	}
	if a.Summary.Count != 2 || a.Summary.Sum != 30 {
		t.Fatalf("summary = %+v", a.Summary)
	}
	if n.AlertsFired() != 1 || n.AlertPushesOut() != 1 {
		t.Fatalf("counters fired=%d pushes=%d, want 1/1", n.AlertsFired(), n.AlertPushesOut())
	}
}

func TestThresholdAlertFiresFromIngest(t *testing.T) {
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	n := newAlertNode(t, sink, clock, "")
	ctx := context.Background()

	err := n.Subscribe(cq.Subscription{
		ID: "hot", TypeName: "traffic", Kind: cq.KindThreshold, Window: time.Minute,
		Predicate: cq.PredAbove, Threshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The crossing seals at ingest time, before any flush.
	if err := n.Ingest(typedBatch("traffic", t0, 10, 60)); err != nil {
		t.Fatal(err)
	}
	if n.AlertsFired() != 1 {
		t.Fatalf("fired %d alerts at ingest, want 1", n.AlertsFired())
	}
	// A second crossing in the same window does not refire.
	if err := n.Ingest(typedBatch("traffic", t0.Add(time.Second), 70)); err != nil {
		t.Fatal(err)
	}
	if n.AlertsFired() != 1 {
		t.Fatalf("same-window crossing refired: %d", n.AlertsFired())
	}
	if err := n.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := sink.stored()
	if len(got) != 1 || got[0].Kind != protocol.AlertKindThreshold || got[0].Value != 60 {
		t.Fatalf("stored = %+v", got)
	}
}

func TestAlertDeliveryExactlyOnceThroughRetries(t *testing.T) {
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	n := newAlertNode(t, sink, clock, "")
	ctx := context.Background()

	if err := n.Subscribe(windowSub("w1", "traffic", time.Minute)); err != nil {
		t.Fatal(err)
	}
	_ = n.Ingest(typedBatch("traffic", t0, 1, 2))
	clock.Advance(2 * time.Minute)

	// Parent down: the sealed push parks on the retry queue.
	sink.set("down")
	_ = n.Flush(ctx)
	if n.AlertsFired() != 1 {
		t.Fatalf("fired %d, want 1", n.AlertsFired())
	}
	// Ack lost after processing: the sink stored the push but the node
	// must retry it.
	sink.set("acklost")
	_ = n.Flush(ctx)
	// Healthy: the retry arrives and dedups at the push level.
	sink.set("up")
	if err := n.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	pushes, dups, instances := sink.pushes, sink.dupPushes, len(sink.instances)
	sink.mu.Unlock()
	if instances != 1 {
		t.Fatalf("stored %d instances, want exactly 1", instances)
	}
	if pushes < 2 || dups != pushes-1 {
		t.Fatalf("pushes=%d dups=%d: retry not deduped at push level", pushes, dups)
	}
	// Nothing left queued.
	if n.PendingBatches() != 0 {
		t.Fatalf("%d delivery units still pending", n.PendingBatches())
	}
}

func TestAlertCrashRecoveryExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	ctx := context.Background()

	n := newAlertNode(t, sink, clock, dir)
	if err := n.Subscribe(windowSub("w1", "traffic", time.Minute)); err != nil {
		t.Fatal(err)
	}
	_ = n.Ingest(typedBatch("traffic", t0, 10, 20))

	// Crash before any flush: no Close, rebuild from the journal.
	n.Discard()
	clock.Advance(2 * time.Minute)
	n2 := newAlertNode(t, sink, clock, dir)
	if subs := n2.Subscriptions(); len(subs) != 1 || subs[0].ID != "w1" {
		t.Fatalf("subscription lost in crash: %+v", subs)
	}
	if err := n2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := sink.stored()
	if len(got) != 1 || got[0].Summary.Count != 2 || got[0].Summary.Sum != 30 {
		t.Fatalf("recovered window = %+v", got)
	}

	// Crash again after delivery: the journaled seal + commit must stop
	// the window from refiring in the third life.
	n2.Discard()
	n3 := newAlertNode(t, sink, clock, dir)
	if err := n3.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	instances := len(sink.instances)
	sink.mu.Unlock()
	if instances != 1 {
		t.Fatalf("delivered window refired after reboot: %d instances", instances)
	}
	_ = n3.Close(ctx)
}

func TestAlertQueueSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	ctx := context.Background()

	n := newAlertNode(t, sink, clock, dir)
	if err := n.Subscribe(windowSub("w1", "traffic", time.Minute)); err != nil {
		t.Fatal(err)
	}
	_ = n.Ingest(typedBatch("traffic", t0, 10, 20))
	clock.Advance(2 * time.Minute)

	// Seal the push against a dead parent, then crash with it queued.
	sink.set("down")
	_ = n.Flush(ctx)
	if n.AlertsFired() != 1 {
		t.Fatalf("fired %d, want 1", n.AlertsFired())
	}
	n.Discard()

	sink.set("up")
	n2 := newAlertNode(t, sink, clock, dir)
	if err := n2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := sink.stored()
	if len(got) != 1 || got[0].Summary.Count != 2 {
		t.Fatalf("queued push lost in crash: %+v", got)
	}
	// The recovered node must not have fired a second instance for the
	// same window on top of the recovered queue.
	sink.mu.Lock()
	instances := len(sink.instances)
	sink.mu.Unlock()
	if instances != 1 {
		t.Fatalf("stored %d instances, want 1", instances)
	}
	_ = n2.Close(ctx)
}

func TestMigrationCarriesSubscriptionAndWindowState(t *testing.T) {
	sink := newAlertSink()
	clock := sim.NewVirtualClock(t0)
	ctx := context.Background()

	src := newAlertNode(t, sink, clock, "")
	dstSpec := fog1Spec()
	dstSpec.ID = "fog1/d01-s02"
	dst, err := New(Config{
		Spec: dstSpec, Clock: clock, Transport: sink, Codec: aggregate.CodecNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.attach(dst.ID(), dst)

	if err := src.Subscribe(windowSub("w1", "traffic", time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Half the window accumulates on the source...
	_ = src.Ingest(typedBatch("traffic", t0, 10))

	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		t.Fatal(err)
	}
	if subs := src.Subscriptions(); len(subs) != 0 {
		t.Fatalf("source still holds subscriptions after handoff: %+v", subs)
	}
	if subs := dst.Subscriptions(); len(subs) != 1 || subs[0].ID != "w1" {
		t.Fatalf("target did not absorb the subscription: %+v", subs)
	}

	// ...and the other half on the target, post-migration.
	_ = dst.Ingest(typedBatch("traffic", t0.Add(time.Second), 20))
	clock.Advance(2 * time.Minute)
	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := sink.stored()
	if len(got) != 1 {
		t.Fatalf("stored %d instances, want 1: %+v", len(got), got)
	}
	if got[0].FiredBy != dst.ID() {
		t.Fatalf("alert fired by %q, want the migration target", got[0].FiredBy)
	}
	// The merged window covers readings from both lives.
	if got[0].Summary.Count != 2 || got[0].Summary.Sum != 30 {
		t.Fatalf("migrated window state lost readings: %+v", got[0].Summary)
	}
	// The source ingesting the type again must not fire: the
	// subscription moved with the shard.
	_ = src.Ingest(typedBatch("traffic", t0.Add(2*time.Second), 99))
	if src.AlertsFired() != 0 {
		t.Fatalf("source fired %d alerts after handoff", src.AlertsFired())
	}
}

func TestControlSubscribeRoundTrip(t *testing.T) {
	n := newAlertNode(t, newAlertSink(), sim.NewVirtualClock(t0), "")
	ctx := context.Background()

	subDoc, err := protocol.EncodeJSON(windowSub("w1", "traffic", time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpSubscribe, Sub: subDoc})
	reply, err := n.Handle(ctx, transport.Message{Kind: transport.KindControl, To: n.ID(), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "subscribed" {
		t.Fatalf("subscribe reply = %s", reply)
	}

	payload, _ = protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpSubscriptions})
	reply, err = n.Handle(ctx, transport.Message{Kind: transport.KindControl, To: n.ID(), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	var resp protocol.SubscriptionsResponse
	if err := protocol.DecodeJSON(reply, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Subs) != 1 {
		t.Fatalf("listed %d subscriptions, want 1", len(resp.Subs))
	}
	var sub cq.Subscription
	if err := protocol.DecodeJSON(resp.Subs[0], &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID != "w1" || sub.TypeName != "traffic" {
		t.Fatalf("listed subscription = %+v", sub)
	}

	payload, _ = protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpSubscribe, Sub: subDoc, Remove: true})
	reply, err = n.Handle(ctx, transport.Message{Kind: transport.KindControl, To: n.ID(), Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "unsubscribed" {
		t.Fatalf("unsubscribe reply = %s", reply)
	}
	if len(n.Subscriptions()) != 0 {
		t.Fatalf("subscription still present after unsubscribe")
	}
}
