package fognode

// Race-focused coverage for the sharded concurrent ingest/flush
// pipeline. These tests are meaningful under `go test -race` (CI runs
// them that way) but also assert reading conservation, so they catch
// lost updates even without the race detector.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

// raceTypes are distinct sensor types spread across categories so
// concurrent ingests exercise different shards. val maps a loop index
// into the type's plausible range, keeping the quality stage from
// rejecting anything (conservation assertions need every reading
// kept).
var raceTypes = []struct {
	name string
	cat  model.Category
	val  func(i int) float64
}{
	{"temperature", model.CategoryEnergy, func(i int) float64 { return 5 + float64(i%30) }},
	{"traffic", model.CategoryUrban, func(i int) float64 { return float64(i % 100) }},
	{"noise_level", model.CategoryNoise, func(i int) float64 { return 30 + float64(i%70) }},
	{"parking_spot", model.CategoryParking, func(i int) float64 { return float64(i % 2) }},
}

func raceBatch(typ string, cat model.Category, sensor int, val float64, at time.Time) *model.Batch {
	return &model.Batch{
		NodeID: "edge", TypeName: typ, Category: cat, Collected: at,
		Readings: []model.Reading{{
			SensorID: fmt.Sprintf("%s/%d", typ, sensor), TypeName: typ, Category: cat,
			Time: at, Value: val,
		}},
	}
}

// TestConcurrentIngestFlushQueryRace hammers one node with parallel
// ingests of several types, concurrent flushes, and concurrent reads,
// then verifies no reading was lost or duplicated: everything ingested
// ends up delivered to the parent once the final flush succeeds.
func TestConcurrentIngestFlushQueryRace(t *testing.T) {
	var delivered atomic.Int64
	net := transport.NewSimNetwork()
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		delivered.Add(int64(len(b.Readings)))
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec:      fog1Spec(),
		Clock:     sim.NewVirtualClock(t0),
		Transport: net,
		Codec:     aggregate.CodecNone,
		Quality:   true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const perWorker = 200
	ctx := context.Background()
	var wg sync.WaitGroup
	// Two ingest workers per type: same-type ingests contend on one
	// shard, cross-type ingests must not.
	for _, rt := range raceTypes {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(rt struct {
				name string
				cat  model.Category
				val  func(i int) float64
			}, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					// Millisecond spacing keeps timestamps within the
					// freshness rule's clock-skew allowance.
					at := t0.Add(time.Duration(w*perWorker+i) * time.Millisecond)
					b := raceBatch(rt.name, rt.cat, w, rt.val(i), at)
					if err := n.Ingest(b); err != nil {
						t.Errorf("ingest %s: %v", rt.name, err)
						return
					}
				}
			}(rt, w)
		}
	}
	// Concurrent flusher and readers.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = n.Flush(ctx)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.Latest("temperature/0")
				n.Query("traffic", t0, t0.Add(time.Hour))
				n.Tags("noise_level")
				n.Status()
			}
		}
	}()
	done := make(chan struct{})
	go func() { // close stop once all ingest workers are finished
		defer close(done)
		wg.Wait()
	}()
	// Wait for the 8 ingest workers by counting ingested readings.
	want := int64(len(raceTypes) * 2 * perWorker)
	deadline := time.After(30 * time.Second)
	for n.ingestedReads.Value() < want {
		select {
		case <-deadline:
			t.Fatalf("ingest stalled: %d of %d readings", n.ingestedReads.Value(), want)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done

	if err := n.Flush(ctx); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if got := delivered.Load(); got != want {
		t.Errorf("delivered %d readings, ingested %d: concurrent pipeline lost or duplicated data", got, want)
	}
	if n.PendingBatches() != 0 {
		t.Errorf("pending after final flush = %d", n.PendingBatches())
	}
	if shed := n.ShedReadings(); shed != 0 {
		t.Errorf("shed %d readings with no bound configured", shed)
	}
}

// TestParallelFlushWorkersRequeueOnFailure verifies the worker-pool
// flush keeps per-type requeue-on-failure semantics: with a parent
// that fails half the types, failed types stay queued and successful
// ones drain.
func TestParallelFlushWorkersRequeueOnFailure(t *testing.T) {
	net := transport.NewSimNetwork()
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		if b.TypeName == "temperature" || b.TypeName == "traffic" {
			return nil, fmt.Errorf("rejecting %s", b.TypeName)
		}
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec:         fog1Spec(),
		Clock:        sim.NewVirtualClock(t0),
		Transport:    net,
		Codec:        aggregate.CodecNone,
		FlushWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range raceTypes {
		if err := n.Ingest(raceBatch(rt.name, rt.cat, 0, float64(i), t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("expected a joined flush error for the rejected types")
	}
	if got := n.PendingBatches(); got != 2 {
		t.Errorf("pending after partial flush = %d, want 2 (rejected types requeued)", got)
	}
	if _, ok := n.Tags("temperature"); !ok {
		t.Error("tags lost for requeued type")
	}
}
