package fognode

import (
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/quality"
)

// StageContext carries per-ingest state through the acquisition
// pipeline. Stages may read and update it; the node seeds it with the
// ingest instant and a perfect quality score.
type StageContext struct {
	// NodeID identifies the node running the pipeline.
	NodeID string
	// Now is the ingest instant (virtual in simulations).
	Now time.Time
	// Score is the batch quality score in [0,1], recorded in the
	// description tags. The quality stage overwrites it; custom
	// stages may refine it further.
	Score float64
}

// Stage is one composable step of the acquisition pipeline. A stage
// receives the batch produced by the previous stage and returns the
// batch the next stage sees; it must not mutate the input batch
// (copy-on-write, as aggregate.Deduper and quality.Assessor do).
// Returning an error aborts the ingest. Stages run on the concurrent
// ingest path and must be safe for concurrent use.
type Stage interface {
	// Name identifies the stage in error messages.
	Name() string
	// Process transforms the batch.
	Process(sc *StageContext, b *model.Batch) (*model.Batch, error)
}

// StageFunc adapts a function to the Stage interface.
func StageFunc(name string, fn func(sc *StageContext, b *model.Batch) (*model.Batch, error)) Stage {
	return funcStage{name: name, fn: fn}
}

type funcStage struct {
	name string
	fn   func(sc *StageContext, b *model.Batch) (*model.Batch, error)
}

func (s funcStage) Name() string { return s.name }

func (s funcStage) Process(sc *StageContext, b *model.Batch) (*model.Batch, error) {
	return s.fn(sc, b)
}

// dedupStage is the redundant-data-elimination phase (paper §V.A).
type dedupStage struct {
	deduper *aggregate.Deduper
}

func (s dedupStage) Name() string { return "dedup" }

func (s dedupStage) Process(_ *StageContext, b *model.Batch) (*model.Batch, error) {
	return s.deduper.Filter(b), nil
}

// qualityStage is the data-quality phase: rejected readings are
// dropped, the batch score lands in the stage context for the
// description phase that follows the pipeline.
type qualityStage struct {
	assessor *quality.Assessor
	rejected *metrics.Counter
}

func (s qualityStage) Name() string { return "quality" }

func (s qualityStage) Process(sc *StageContext, b *model.Batch) (*model.Batch, error) {
	b, rep := s.assessor.Assess(b, sc.Now)
	sc.Score = rep.Score()
	s.rejected.Add(int64(rep.Rejected))
	return b, nil
}
