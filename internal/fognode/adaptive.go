package fognode

import (
	"sync"
	"time"

	"f2c/internal/metrics"
)

// AdaptiveConfig tunes the adaptive flush controller: an EWMA of the
// parent round-trip time plus the local queue depth drive the flush
// batch size and interval between configured floor and ceiling — the
// paper's "strategically decided" upward frequency, decided
// continuously by the network instead of once by the operator.
type AdaptiveConfig struct {
	// MinBatch / MaxBatch bound the per-send batch size in readings
	// (defaults 64 / 8192). The controller starts midway.
	MinBatch, MaxBatch int
	// MinInterval / MaxInterval bound the background flush cadence
	// (defaults FlushInterval/8 and FlushInterval).
	MinInterval, MaxInterval time.Duration
	// TargetRTT is the parent round-trip the controller steers toward
	// (default 50ms): below it batches grow and flushes accelerate,
	// beyond twice it they shrink and slow down.
	TargetRTT time.Duration
	// Alpha is the RTT EWMA smoothing factor in (0, 1] (default 0.2).
	Alpha float64
}

func (c *AdaptiveConfig) applyDefaults(flushInterval time.Duration) {
	if c.MinBatch <= 0 {
		c.MinBatch = 64
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = 8192
		if c.MaxBatch < c.MinBatch {
			c.MaxBatch = c.MinBatch
		}
	}
	if c.MinInterval <= 0 {
		c.MinInterval = flushInterval / 8
		if c.MinInterval <= 0 {
			c.MinInterval = time.Second
		}
	}
	if c.MaxInterval < c.MinInterval {
		c.MaxInterval = flushInterval
		if c.MaxInterval < c.MinInterval {
			c.MaxInterval = c.MinInterval
		}
	}
	if c.TargetRTT <= 0 {
		c.TargetRTT = 50 * time.Millisecond
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
}

// flushController is the adaptive-batch state machine. AIMD over the
// batch size: backpressure halves it (and doubles the interval), a
// healthy RTT with a drained queue grows it additively (and shortens
// the interval), an RTT past twice the target decays both. All methods
// are safe for concurrent use.
type flushController struct {
	cfg AdaptiveConfig

	mu          sync.Mutex
	ewma        time.Duration // smoothed parent RTT; 0 = no sample yet
	batch       int
	ivl         time.Duration
	backpressed bool // since the last onFlushDone

	gBatch *metrics.Gauge
	gIvl   *metrics.Gauge
	gRTT   *metrics.Gauge
}

// newFlushController builds a controller starting midway between the
// batch bounds at the configured base interval.
func newFlushController(cfg AdaptiveConfig, flushInterval time.Duration, reg *metrics.Registry, prefix string) *flushController {
	cfg.applyDefaults(flushInterval)
	c := &flushController{
		cfg:   cfg,
		batch: (cfg.MinBatch + cfg.MaxBatch) / 2,
		ivl:   cfg.MaxInterval,
	}
	if reg != nil {
		c.gBatch = reg.Gauge(prefix + "flush.adaptive.batch")
		c.gIvl = reg.Gauge(prefix + "flush.adaptive.interval_ms")
		c.gRTT = reg.Gauge(prefix + "flush.adaptive.rtt_ewma_us")
		c.publishLocked()
	}
	return c
}

// publishLocked refreshes the gauges. Caller holds c.mu (or owns c
// exclusively during construction).
func (c *flushController) publishLocked() {
	if c.gBatch == nil {
		return
	}
	c.gBatch.Set(int64(c.batch))
	c.gIvl.Set(int64(c.ivl / time.Millisecond))
	c.gRTT.Set(int64(c.ewma / time.Microsecond))
}

// batchSize returns the current per-send batch bound in readings.
func (c *flushController) batchSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batch
}

// interval returns the current background flush cadence.
func (c *flushController) interval() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ivl
}

// rtt returns the smoothed parent round-trip (0 before any sample).
func (c *flushController) rtt() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ewma
}

// observeRTT folds one parent round-trip sample into the EWMA.
func (c *flushController) observeRTT(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	if c.ewma == 0 {
		c.ewma = d
	} else {
		c.ewma = time.Duration(c.cfg.Alpha*float64(d) + (1-c.cfg.Alpha)*float64(c.ewma))
	}
	c.publishLocked()
	c.mu.Unlock()
}

// onBackpressure reacts to a deferred send (window exhausted or peer
// overloaded): multiplicative decrease on the batch, doubled interval.
func (c *flushController) onBackpressure() {
	c.mu.Lock()
	c.backpressed = true
	c.batch /= 2
	if c.batch < c.cfg.MinBatch {
		c.batch = c.cfg.MinBatch
	}
	c.ivl *= 2
	if c.ivl > c.cfg.MaxInterval {
		c.ivl = c.cfg.MaxInterval
	}
	c.publishLocked()
	c.mu.Unlock()
}

// onFlushDone closes one flush round given the post-flush queue depth
// (readings still buffered): with no backpressure this round, a
// healthy RTT and a queue the current batch can clear, the batch grows
// additively and the cadence accelerates; an RTT past twice the target
// decays both toward gentler load.
func (c *flushController) onFlushDone(queueDepth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bp := c.backpressed
	c.backpressed = false
	defer c.publishLocked()
	if bp {
		return // the decrease already happened at the send
	}
	switch {
	case c.ewma > 2*c.cfg.TargetRTT:
		c.batch = c.batch * 3 / 4
		if c.batch < c.cfg.MinBatch {
			c.batch = c.cfg.MinBatch
		}
		c.ivl = c.ivl * 5 / 4
		if c.ivl > c.cfg.MaxInterval {
			c.ivl = c.cfg.MaxInterval
		}
	case c.ewma <= c.cfg.TargetRTT && queueDepth < c.batch:
		grow := c.batch / 4
		if grow < 1 {
			grow = 1
		}
		c.batch += grow
		if c.batch > c.cfg.MaxBatch {
			c.batch = c.cfg.MaxBatch
		}
		c.ivl = c.ivl * 3 / 4
		if c.ivl < c.cfg.MinInterval {
			c.ivl = c.cfg.MinInterval
		}
	}
}
