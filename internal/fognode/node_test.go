package fognode

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

var t0 = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func fog1Spec() topology.NodeSpec {
	return topology.NodeSpec{
		ID: "fog1/d01-s01", Layer: topology.LayerFog1, Parent: "fog2/d01", Name: "Ciutat Vella s01",
	}
}

func batchOf(vals map[string]float64, at time.Time) *model.Batch {
	b := &model.Batch{NodeID: "edge", TypeName: "temperature", Category: model.CategoryEnergy, Collected: at}
	// Deterministic ordering for tests.
	for _, id := range sortedKeys(vals) {
		b.Readings = append(b.Readings, model.Reading{
			SensorID: id, TypeName: "temperature", Category: model.CategoryEnergy,
			Time: at, Value: vals[id], Unit: "C",
		})
	}
	return b
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func newTestNode(t *testing.T, net *transport.SimNetwork, dedup bool) *Node {
	t.Helper()
	clock := sim.NewVirtualClock(t0)
	n, err := New(Config{
		Spec:      fog1Spec(),
		City:      "barcelona",
		Clock:     clock,
		Transport: net,
		Codec:     aggregate.CodecZip,
		Dedup:     dedup,
		Quality:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestIngestStoresAndQueues(t *testing.T) {
	n := newTestNode(t, nil, true)
	if err := n.Ingest(batchOf(map[string]float64{"a": 20, "b": 21}, t0)); err != nil {
		t.Fatal(err)
	}
	if r, ok := n.Latest("a"); !ok || r.Value != 20 {
		t.Errorf("Latest(a) = %+v ok=%v", r, ok)
	}
	if got := n.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 2 {
		t.Errorf("Query = %d readings, want 2", len(got))
	}
	if n.PendingBatches() != 1 {
		t.Errorf("PendingBatches = %d, want 1", n.PendingBatches())
	}
	st := n.Status()
	if st.NodeID != "fog1/d01-s01" || st.Layer != "fog1" || st.StoredReadings != 2 || st.IngestedBatches != 1 {
		t.Errorf("Status = %+v", st)
	}
}

func TestIngestDedupEliminatesRepeats(t *testing.T) {
	n := newTestNode(t, nil, true)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20, "b": 21}, t0))
	_ = n.Ingest(batchOf(map[string]float64{"a": 20, "b": 22}, t0.Add(time.Minute)))
	// a repeated: only b's new value is stored the second time.
	if got := n.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 3 {
		t.Errorf("stored = %d readings, want 3", len(got))
	}
	if share := n.DedupEliminatedShare(); share != 0.25 {
		t.Errorf("eliminated share = %v, want 0.25", share)
	}
}

func TestIngestQualityRejectsGarbage(t *testing.T) {
	n := newTestNode(t, nil, false)
	b := batchOf(map[string]float64{"a": 20, "b": 9999}, t0) // 9999 out of range
	if err := n.Ingest(b); err != nil {
		t.Fatal(err)
	}
	if got := n.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 1 {
		t.Errorf("stored = %d, want 1 (rejected reading dropped)", len(got))
	}
	tags, ok := n.Tags("temperature")
	if !ok {
		t.Fatal("missing tags")
	}
	if tags.QualityScore >= 1 {
		t.Errorf("quality score = %v, want < 1", tags.QualityScore)
	}
	if tags.City != "barcelona" || tags.Section != "Ciutat Vella s01" {
		t.Errorf("tags = %+v", tags)
	}
}

func TestIngestInvalidBatch(t *testing.T) {
	n := newTestNode(t, nil, false)
	if err := n.Ingest(&model.Batch{}); err == nil {
		t.Error("expected error")
	}
}

func TestFlushSendsToParent(t *testing.T) {
	net := transport.NewSimNetwork()
	var mu sync.Mutex
	var received []*model.Batch
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, codec, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		if codec != aggregate.CodecZip {
			t.Errorf("codec = %v, want zip", codec)
		}
		mu.Lock()
		received = append(received, b)
		mu.Unlock()
		return []byte("ok"), nil
	}))
	n := newTestNode(t, net, true)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20, "b": 21}, t0))
	if err := n.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 1 {
		t.Fatalf("parent received %d batches, want 1", len(received))
	}
	if received[0].NodeID != "fog1/d01-s01" {
		t.Errorf("upward batch NodeID = %q, want the fog node's", received[0].NodeID)
	}
	if len(received[0].Readings) != 2 {
		t.Errorf("upward readings = %d, want 2", len(received[0].Readings))
	}
	if n.PendingBatches() != 0 {
		t.Errorf("pending after flush = %d", n.PendingBatches())
	}
}

func TestFlushFailureRequeues(t *testing.T) {
	net := transport.NewSimNetwork()
	fail := true
	var got []*model.Batch
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		if fail {
			return nil, errors.New("fog2 unavailable")
		}
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		got = append(got, b)
		return []byte("ok"), nil
	}))
	n := newTestNode(t, net, false)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("expected flush error")
	}
	if n.PendingBatches() != 1 {
		t.Fatalf("failed batch not requeued")
	}
	// New data arrives, then the parent recovers. The failed batch is
	// frozen on the retry queue (its delivery sequence must stay
	// stable so the receiver can dedupe a replay), so the recovery
	// flush delivers two batches: the failed one first, then the
	// fresh readings.
	_ = n.Ingest(batchOf(map[string]float64{"a": 21}, t0.Add(time.Minute)))
	fail = false
	if err := n.Flush(context.Background()); err != nil {
		t.Fatalf("second flush: %v", err)
	}
	if len(got) != 2 || len(got[0].Readings) != 1 || len(got[1].Readings) != 1 {
		t.Fatalf("recovered batches = %+v", got)
	}
	if !got[0].Readings[0].Time.Equal(t0) || !got[1].Readings[0].Time.Equal(t0.Add(time.Minute)) {
		t.Error("requeued readings must precede newer ones")
	}
	if n.PendingBatches() != 0 {
		t.Errorf("pending after recovery = %d", n.PendingBatches())
	}
}

func TestFlushWithoutParent(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	n, err := New(Config{
		Spec:  topology.NodeSpec{ID: "cloudish", Layer: topology.LayerCloud},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing pending: no error.
	if err := n.Flush(context.Background()); err != nil {
		t.Errorf("empty flush = %v", err)
	}
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	if err := n.Flush(context.Background()); !errors.Is(err, ErrNoParent) {
		t.Errorf("flush = %v, want ErrNoParent", err)
	}
}

func TestFlushAppliesRetention(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	net := transport.NewSimNetwork()
	net.Register("fog2/d01", transport.HandlerFunc(func(context.Context, transport.Message) ([]byte, error) {
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec: fog1Spec(), Clock: clock, Transport: net,
		Retention: time.Hour, Codec: aggregate.CodecNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	_ = n.Flush(context.Background())
	clock.Advance(3 * time.Hour)
	_ = n.Flush(context.Background())
	if got := n.Query("temperature", t0.Add(-time.Hour), t0.Add(10*time.Hour)); len(got) != 0 {
		t.Errorf("temporal store kept %d readings past retention", len(got))
	}
	// Real-time latest still available.
	if _, ok := n.Latest("a"); !ok {
		t.Error("latest must survive retention")
	}
}

func TestHandleBatchIngestsAtLayer2(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	f2, err := New(Config{
		Spec:  topology.NodeSpec{ID: "fog2/d01", Layer: topology.LayerFog2, Parent: "cloud", Name: "Ciutat Vella"},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	child := batchOf(map[string]float64{"a": 20}, t0)
	child.NodeID = "fog1/d01-s01"
	payload, err := protocol.EncodeBatchPayload(child, aggregate.CodecGzip)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := f2.Handle(context.Background(), transport.Message{
		From: "fog1/d01-s01", To: "fog2/d01", Kind: transport.KindBatch, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ok" {
		t.Errorf("reply = %q", reply)
	}
	if got := f2.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 1 {
		t.Errorf("layer-2 store = %d readings, want 1", len(got))
	}
	if f2.PendingBatches() != 1 {
		t.Error("layer 2 must queue combined data for its own upward flush")
	}
}

func TestHandleQueryLatestAndRange(t *testing.T) {
	n := newTestNode(t, nil, false)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))

	// Latest.
	req, _ := protocol.EncodeJSON(protocol.QueryRequest{SensorID: "a"})
	reply, err := n.Handle(context.Background(), transport.Message{Kind: transport.KindQuery, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeQueryPage(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || len(resp.Readings) != 1 || resp.Readings[0].Value != 20 {
		t.Errorf("latest resp = %+v", resp)
	}

	// Range.
	req, _ = protocol.EncodeJSON(protocol.QueryRequest{
		TypeName: "temperature", FromUnix: t0.Add(-time.Minute).UnixNano(), ToUnix: t0.Add(time.Minute).UnixNano(),
	})
	reply, err = n.Handle(context.Background(), transport.Message{Kind: transport.KindQuery, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = protocol.DecodeQueryPage(reply)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || len(resp.Readings) != 1 {
		t.Errorf("range resp = %+v", resp)
	}

	// Miss.
	req, _ = protocol.EncodeJSON(protocol.QueryRequest{SensorID: "ghost"})
	reply, _ = n.Handle(context.Background(), transport.Message{Kind: transport.KindQuery, Payload: req})
	resp, _ = protocol.DecodeQueryPage(reply)
	if resp.Found {
		t.Error("ghost sensor should not be found")
	}
}

func TestHandleErrors(t *testing.T) {
	n := newTestNode(t, nil, false)
	cases := []transport.Message{
		{Kind: transport.KindBatch, Payload: []byte("junk")},
		{Kind: transport.KindQuery, Payload: []byte("junk")},
		{Kind: transport.KindQuery, Payload: []byte(`{}`)},
		{Kind: transport.KindControl, Payload: []byte("junk")},
		{Kind: transport.KindControl, Payload: []byte(`{"op":"dance"}`)},
		{Kind: "nope"},
	}
	for i, msg := range cases {
		if _, err := n.Handle(context.Background(), msg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHandleControlFlushAndStatus(t *testing.T) {
	net := transport.NewSimNetwork()
	net.Register("fog2/d01", transport.HandlerFunc(func(context.Context, transport.Message) ([]byte, error) {
		return []byte("ok"), nil
	}))
	n := newTestNode(t, net, false)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))

	req, _ := protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpFlush})
	reply, err := n.Handle(context.Background(), transport.Message{Kind: transport.KindControl, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "flushed" || n.PendingBatches() != 0 {
		t.Errorf("flush control failed: %q pending=%d", reply, n.PendingBatches())
	}

	req, _ = protocol.EncodeJSON(protocol.ControlRequest{Op: protocol.OpStatus})
	reply, err = n.Handle(context.Background(), transport.Message{Kind: transport.KindControl, Payload: req})
	if err != nil {
		t.Fatal(err)
	}
	var st protocol.StatusResponse
	if err := protocol.DecodeJSON(reply, &st); err != nil {
		t.Fatal(err)
	}
	if st.NodeID != n.ID() || st.StoredReadings != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	net := transport.NewSimNetwork()
	var count int64
	var mu sync.Mutex
	net.Register("fog2/d01", transport.HandlerFunc(func(context.Context, transport.Message) ([]byte, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec: fog1Spec(), Clock: sim.WallClock{}, Transport: net,
		FlushInterval: 10 * time.Millisecond, Codec: aggregate.CodecNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Start() // idempotent
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, time.Now()))
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background flusher never flushed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := n.Close(context.Background()); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Close again is safe.
	if err := n.Close(context.Background()); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Start after Close is a no-op.
	n.Start()
}

func TestCloseFlushesPendingData(t *testing.T) {
	net := transport.NewSimNetwork()
	var got int
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		got++
		return []byte("ok"), nil
	}))
	n := newTestNode(t, net, false)
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	if err := n.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got != 1 {
		t.Errorf("Close flushed %d batches, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := New(Config{Spec: fog1Spec(), Codec: aggregate.Codec(42)}); err == nil {
		t.Error("invalid codec must fail")
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	n := newTestNode(t, nil, true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				at := t0.Add(time.Duration(i*50+j) * time.Second)
				_ = n.Ingest(batchOf(map[string]float64{"s": float64(j)}, at))
				n.Latest("s")
				n.Query("temperature", t0, at)
			}
		}(i)
	}
	wg.Wait()
	if st := n.Status(); st.IngestedBatches != 400 {
		t.Errorf("ingested = %d, want 400", st.IngestedBatches)
	}
}

func TestHandleErrorMessageContainsNodeID(t *testing.T) {
	n := newTestNode(t, nil, false)
	_, err := n.Handle(context.Background(), transport.Message{Kind: "bogus"})
	if err == nil || !strings.Contains(err.Error(), n.ID()) {
		t.Errorf("err = %v, want node id in message", err)
	}
}

func TestHandleSummary(t *testing.T) {
	n := newTestNode(t, nil, false)
	_ = n.Ingest(batchOf(map[string]float64{"a": 10, "b": 30}, t0))
	req, _ := protocol.EncodeJSON(protocol.SummaryRequest{
		TypeName: "temperature",
		FromUnix: t0.Add(-time.Minute).UnixNano(),
		ToUnix:   t0.Add(time.Minute).UnixNano(),
	})
	reply, err := n.Handle(context.Background(), transport.Message{
		Kind: transport.KindSummary, Payload: req,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp protocol.SummaryResponse
	if err := protocol.DecodeJSON(reply, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Count != 2 || resp.Summary.Avg() != 20 {
		t.Errorf("summary = %+v", resp.Summary)
	}
	// Invalid summary payloads are rejected.
	for _, payload := range [][]byte{[]byte("junk"), []byte(`{}`)} {
		if _, err := n.Handle(context.Background(), transport.Message{
			Kind: transport.KindSummary, Payload: payload,
		}); err == nil {
			t.Error("expected error")
		}
	}
}

func TestPendingBufferShedsOldestUnderBound(t *testing.T) {
	// No transport: flushes fail, the buffer is bounded at 3
	// readings, oldest shed first.
	clock := sim.NewVirtualClock(t0)
	n, err := New(Config{
		Spec:               fog1Spec(),
		Clock:              clock,
		Codec:              aggregate.CodecNone,
		MaxPendingReadings: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b := &model.Batch{
			NodeID: "edge", TypeName: "temperature", Category: model.CategoryEnergy,
			Collected: t0.Add(time.Duration(i) * time.Minute),
			Readings: []model.Reading{{
				SensorID: "s", TypeName: "temperature", Category: model.CategoryEnergy,
				Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i),
			}},
		}
		if err := n.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.ShedReadings(); got != 2 {
		t.Errorf("shed = %d, want 2", got)
	}
	// The surviving buffer holds the newest three readings, in order.
	net := transport.NewSimNetwork()
	var got *model.Batch
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		got = b
		return []byte("ok"), nil
	}))
	n.cfg.Transport = net
	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Readings) != 3 {
		t.Fatalf("flushed batch = %+v", got)
	}
	if got.Readings[0].Value != 2 || got.Readings[2].Value != 4 {
		t.Errorf("kept values = %v..%v, want 2..4", got.Readings[0].Value, got.Readings[2].Value)
	}
}

func TestFlushCategorySelective(t *testing.T) {
	net := transport.NewSimNetwork()
	var mu sync.Mutex
	var got []model.Category
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		got = append(got, b.Category)
		mu.Unlock()
		return []byte("ok"), nil
	}))
	n := newTestNode(t, net, false)
	// Two categories pending: energy (temperature) and urban
	// (traffic).
	_ = n.Ingest(batchOf(map[string]float64{"a": 20}, t0))
	_ = n.Ingest(&model.Batch{
		NodeID: "edge", TypeName: "traffic", Category: model.CategoryUrban, Collected: t0,
		Readings: []model.Reading{{
			SensorID: "loop", TypeName: "traffic", Category: model.CategoryUrban,
			Time: t0, Value: 50, Unit: "km/h",
		}},
	})
	if n.PendingBatches() != 2 {
		t.Fatalf("pending = %d, want 2", n.PendingBatches())
	}
	if err := n.FlushCategory(context.Background(), model.CategoryUrban); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(got) != 1 || got[0] != model.CategoryUrban {
		t.Fatalf("flushed categories = %v, want [urban]", got)
	}
	mu.Unlock()
	if n.PendingBatches() != 1 {
		t.Errorf("pending after category flush = %d, want 1 (energy still buffered)", n.PendingBatches())
	}
	if err := n.FlushCategory(context.Background(), model.Category(99)); err == nil {
		t.Error("invalid category must fail")
	}
	// Full flush drains the rest.
	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.PendingBatches() != 0 {
		t.Error("pending after full flush")
	}
}
