// Package fognode implements the fog node runtime used at both fog
// layers of the F2C hierarchy (paper §IV): the acquisition pipeline
// (collection -> redundant-data elimination -> quality -> description)
// at layer 1, temporal storage with retention for real-time access,
// combination of child batches at layer 2, and the periodic upward
// flusher whose frequency "can be strategically decided in order to
// accommodate it to the network traffic".
package fognode

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/describe"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/quality"
	"f2c/internal/sim"
	"f2c/internal/store"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

// ErrNoParent is returned by Flush on a node with no upward peer.
var ErrNoParent = errors.New("fognode: node has no parent")

// Config configures a Node.
type Config struct {
	// Spec is the node's place in the topology.
	Spec topology.NodeSpec
	// City names the deployment for data description.
	City string
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Transport reaches the parent node; may be nil for leaf-only
	// experiments (Flush then fails with ErrNoParent).
	Transport transport.Transport
	// Retention bounds the temporal store (0 = keep forever).
	Retention time.Duration
	// FlushInterval drives the background flusher started by Start.
	FlushInterval time.Duration
	// Codec compresses upward transfers.
	Codec aggregate.Codec
	// Dedup enables redundant-data elimination on ingest (the paper
	// applies it at fog layer 1).
	Dedup bool
	// Quality enables the data-quality phase on ingest.
	Quality bool
	// Registry receives node metrics; nil allocates a private one.
	Registry *metrics.Registry
	// Observer, when set, sees every batch that survives the
	// acquisition pipeline — the hook local real-time services
	// (paper §IV.C) attach to. Called synchronously on the ingest
	// path; implementations must be fast and must not retain the
	// batch.
	Observer BatchObserver
	// MaxPendingReadings bounds the per-type upward buffer during
	// parent outages; when exceeded, the oldest readings are shed
	// and counted in the <node>.flush.shed metric. Zero means
	// unbounded.
	MaxPendingReadings int
}

// BatchObserver receives post-pipeline batches.
type BatchObserver interface {
	ObserveBatch(b *model.Batch)
}

func (c *Config) applyDefaults() error {
	if c.Spec.ID == "" {
		return errors.New("fognode: config needs a node spec")
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.Codec == 0 {
		c.Codec = aggregate.CodecNone
	}
	if !c.Codec.Valid() {
		return fmt.Errorf("fognode %s: invalid codec %d", c.Spec.ID, int(c.Codec))
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Minute
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.City == "" {
		c.City = "city"
	}
	return nil
}

// Node is a fog node at layer 1 or 2. Safe for concurrent use.
type Node struct {
	cfg       Config
	store     *store.TimeSeries
	deduper   *aggregate.Deduper
	assessor  *quality.Assessor
	describer *describe.Describer

	mu      sync.Mutex
	pending map[string]*model.Batch
	tags    map[string]describe.Tags

	ingestedBatches *metrics.Counter
	ingestedReads   *metrics.Counter
	flushedBatches  *metrics.Counter
	flushedBytes    *metrics.Counter
	flushErrors     *metrics.Counter
	rejectedReads   *metrics.Counter
	shedReads       *metrics.Counter

	lc *lifecycle
}

// New builds a node.
func New(cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	district := ""
	if cfg.Spec.Layer == topology.LayerFog2 {
		district = cfg.Spec.Name
	}
	n := &Node{
		cfg:       cfg,
		store:     store.NewTimeSeries(cfg.Retention),
		deduper:   aggregate.NewDeduper(),
		assessor:  quality.NewAssessor(nil),
		describer: describe.NewDescriber(cfg.City, district, cfg.Spec.Name, cfg.Spec.Centroid, "f2c"),
		pending:   make(map[string]*model.Batch),
		tags:      make(map[string]describe.Tags),
		lc:        newLifecycle(),
	}
	reg := cfg.Registry
	prefix := cfg.Spec.ID + "."
	n.ingestedBatches = reg.Counter(prefix + "ingest.batches")
	n.ingestedReads = reg.Counter(prefix + "ingest.readings")
	n.flushedBatches = reg.Counter(prefix + "flush.batches")
	n.flushedBytes = reg.Counter(prefix + "flush.bytes")
	n.flushErrors = reg.Counter(prefix + "flush.errors")
	n.rejectedReads = reg.Counter(prefix + "ingest.rejected")
	n.shedReads = reg.Counter(prefix + "flush.shed")
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.cfg.Spec.ID }

// Layer returns the node's hierarchy layer.
func (n *Node) Layer() topology.Layer { return n.cfg.Spec.Layer }

// Ingest runs the acquisition pipeline on a batch: redundant-data
// elimination (when enabled), quality assessment, description
// tagging, temporal storage, and queueing for the next upward flush.
func (n *Node) Ingest(b *model.Batch) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	n.ingestedBatches.Inc()

	if n.cfg.Dedup {
		b = n.deduper.Filter(b)
	}
	score := 1.0
	if n.cfg.Quality {
		var rep quality.Report
		b, rep = n.assessor.Assess(b, n.cfg.Clock.Now())
		score = rep.Score()
		n.rejectedReads.Add(int64(rep.Rejected))
	}
	tags := n.describer.Describe(b, score)

	n.mu.Lock()
	n.tags[b.TypeName] = tags
	n.mu.Unlock()

	if len(b.Readings) == 0 {
		return nil
	}
	n.ingestedReads.Add(int64(len(b.Readings)))

	if err := n.store.Append(b); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	n.enqueue(b)
	if n.cfg.Observer != nil {
		n.cfg.Observer.ObserveBatch(b)
	}
	return nil
}

// enqueue merges a filtered batch into the per-type pending buffer
// that the next flush will move upward, shedding the oldest readings
// when a bound is configured and exceeded (prolonged parent outage).
func (n *Node) enqueue(b *model.Batch) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, ok := n.pending[b.TypeName]
	if !ok {
		cp := b.Clone()
		cp.NodeID = n.cfg.Spec.ID // upward batches carry this node's identity
		n.pending[b.TypeName] = cp
		cur = cp
	} else {
		cur.Readings = append(cur.Readings, b.Readings...)
	}
	if max := n.cfg.MaxPendingReadings; max > 0 && len(cur.Readings) > max {
		shed := len(cur.Readings) - max
		n.shedReads.Add(int64(shed))
		kept := make([]model.Reading, max)
		copy(kept, cur.Readings[shed:])
		cur.Readings = kept
	}
}

// ShedReadings reports how many buffered readings were dropped under
// the MaxPendingReadings bound.
func (n *Node) ShedReadings() int64 { return n.shedReads.Value() }

// PendingBatches returns how many per-type batches await flushing.
func (n *Node) PendingBatches() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Latest serves the real-time read path.
func (n *Node) Latest(sensorID string) (model.Reading, bool) {
	return n.store.Latest(sensorID)
}

// Query serves range reads from the temporal store.
func (n *Node) Query(typeName string, from, to time.Time) []model.Reading {
	return n.store.QueryRange(typeName, from, to)
}

// Tags returns the latest description tags for a type.
func (n *Node) Tags(typeName string) (describe.Tags, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.tags[typeName]
	return t, ok
}

// DedupEliminatedShare reports the measured redundant share removed.
func (n *Node) DedupEliminatedShare() float64 { return n.deduper.EliminatedShare() }

// DedupStats returns the readings observed and kept by the
// redundant-data-elimination phase.
func (n *Node) DedupStats() (in, kept int64) { return n.deduper.Stats() }

// Flush seals all pending batches and sends them to the parent,
// compressed with the configured codec. Batches that fail to send
// stay queued for the next flush. It also applies retention eviction.
func (n *Node) Flush(ctx context.Context) error {
	return n.flush(ctx, nil)
}

// FlushCategory moves only one category's pending data upward — the
// paper's per-data-class update-frequency policy ("the smart city
// business model can decide ... the frequency of updating to upper
// levels"). Other categories stay buffered for their own schedule.
func (n *Node) FlushCategory(ctx context.Context, cat model.Category) error {
	if !cat.Valid() {
		return fmt.Errorf("fognode %s: flush: invalid category %d", n.cfg.Spec.ID, int(cat))
	}
	return n.flush(ctx, func(b *model.Batch) bool { return b.Category == cat })
}

// flush moves pending batches matching the filter (nil = all) upward.
func (n *Node) flush(ctx context.Context, match func(*model.Batch) bool) error {
	defer n.store.Evict(n.cfg.Clock.Now())
	if n.PendingBatches() == 0 {
		return nil
	}

	n.mu.Lock()
	types := make([]string, 0, len(n.pending))
	for typ, b := range n.pending {
		if match == nil || match(b) {
			types = append(types, typ)
		}
	}
	sort.Strings(types)
	batches := make([]*model.Batch, 0, len(types))
	for _, typ := range types {
		batches = append(batches, n.pending[typ])
		delete(n.pending, typ)
	}
	n.mu.Unlock()

	if len(batches) == 0 {
		return nil
	}
	if n.cfg.Spec.Parent == "" {
		for _, b := range batches {
			n.requeue(b)
		}
		return fmt.Errorf("%w: %s", ErrNoParent, n.cfg.Spec.ID)
	}
	if n.cfg.Transport == nil {
		for _, b := range batches {
			n.requeue(b)
		}
		return fmt.Errorf("fognode %s: no transport configured", n.cfg.Spec.ID)
	}

	var errs []error
	now := n.cfg.Clock.Now()
	for _, b := range batches {
		b.Collected = now
		payload, err := protocol.EncodeBatchPayload(b, n.cfg.Codec)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		msg := transport.Message{
			From:    n.cfg.Spec.ID,
			To:      n.cfg.Spec.Parent,
			Kind:    transport.KindBatch,
			Class:   b.Category.String(),
			Payload: payload,
		}
		if _, err := n.cfg.Transport.Send(ctx, msg); err != nil {
			n.flushErrors.Inc()
			n.requeue(b)
			errs = append(errs, fmt.Errorf("fognode %s: flush %s: %w", n.cfg.Spec.ID, b.TypeName, err))
			continue
		}
		n.flushedBatches.Inc()
		n.flushedBytes.Add(msg.WireSize())
	}
	return errors.Join(errs...)
}

// requeue puts a failed batch back at the front of the pending
// buffer.
func (n *Node) requeue(b *model.Batch) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, ok := n.pending[b.TypeName]
	if !ok {
		n.pending[b.TypeName] = b
		return
	}
	// Preserve time order: failed batch first, newer readings after.
	merged := b.Clone()
	merged.Readings = append(merged.Readings, cur.Readings...)
	n.pending[b.TypeName] = merged
}

// Status reports the node's state.
func (n *Node) Status() protocol.StatusResponse {
	st := n.store.Stats()
	return protocol.StatusResponse{
		NodeID:          n.cfg.Spec.ID,
		Layer:           n.cfg.Spec.Layer.String(),
		StoredReadings:  st.Readings,
		StoredSeries:    st.Series,
		PendingBatches:  n.PendingBatches(),
		IngestedBatches: n.ingestedBatches.Value(),
		DedupEliminated: n.DedupEliminatedShare(),
	}
}

var _ transport.Handler = (*Node)(nil)

// Handle implements transport.Handler: child batches, queries and
// control commands.
func (n *Node) Handle(ctx context.Context, msg transport.Message) ([]byte, error) {
	switch msg.Kind {
	case transport.KindBatch:
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		if err := n.Ingest(b); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case transport.KindQuery:
		return n.handleQuery(msg.Payload)
	case transport.KindSummary:
		return n.handleSummary(msg.Payload)
	case transport.KindControl:
		return n.handleControl(ctx, msg.Payload)
	default:
		return nil, fmt.Errorf("fognode %s: unsupported message kind %q", n.cfg.Spec.ID, msg.Kind)
	}
}

func (n *Node) handleSummary(payload []byte) ([]byte, error) {
	var req protocol.SummaryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	from, to := req.Range()
	sum := aggregate.Summarize(n.Query(req.TypeName, from, to))
	return protocol.EncodeJSON(protocol.SummaryResponse{Summary: sum})
}

func (n *Node) handleQuery(payload []byte) ([]byte, error) {
	var req protocol.QueryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var resp protocol.QueryResponse
	if req.SensorID != "" {
		if r, ok := n.Latest(req.SensorID); ok {
			resp.Found = true
			resp.Readings = []model.Reading{r}
		}
	} else {
		from, to := req.Range()
		resp.Readings = n.Query(req.TypeName, from, to)
		resp.Found = len(resp.Readings) > 0
	}
	return protocol.EncodeJSON(resp)
}

func (n *Node) handleControl(ctx context.Context, payload []byte) ([]byte, error) {
	var req protocol.ControlRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	switch req.Op {
	case protocol.OpFlush:
		if err := n.Flush(ctx); err != nil {
			return nil, err
		}
		return []byte("flushed"), nil
	case protocol.OpStatus:
		return protocol.EncodeJSON(n.Status())
	default:
		return nil, fmt.Errorf("fognode %s: unknown control op %q", n.cfg.Spec.ID, req.Op)
	}
}
