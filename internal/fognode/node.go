// Package fognode implements the fog node runtime used at both fog
// layers of the F2C hierarchy (paper §IV): the acquisition pipeline
// (collection -> redundant-data elimination -> quality -> description)
// at layer 1, temporal storage with retention for real-time access,
// combination of child batches at layer 2, and the periodic upward
// flusher whose frequency "can be strategically decided in order to
// accommodate it to the network traffic".
//
// The acquisition pipeline is a sequence of composable Stage values
// running over hash-sharded per-type state, so concurrent Ingest
// calls on different sensor types never contend on a node-wide lock,
// and flushes move the sharded pending buffers upward with a bounded
// worker pool.
package fognode

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/describe"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/quality"
	"f2c/internal/sim"
	"f2c/internal/store"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

// ErrNoParent is returned by Flush on a node with no upward peer.
var ErrNoParent = errors.New("fognode: node has no parent")

// Config configures a Node.
type Config struct {
	// Spec is the node's place in the topology.
	Spec topology.NodeSpec
	// City names the deployment for data description.
	City string
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Transport reaches the parent node; may be nil for leaf-only
	// experiments (Flush then fails with ErrNoParent).
	Transport transport.Transport
	// Retention bounds the temporal store (0 = keep forever).
	Retention time.Duration
	// FlushInterval drives the background flusher started by Start.
	FlushInterval time.Duration
	// Codec compresses upward transfers.
	Codec aggregate.Codec
	// Dedup enables redundant-data elimination on ingest (the paper
	// applies it at fog layer 1).
	Dedup bool
	// Quality enables the data-quality phase on ingest.
	Quality bool
	// Stages appends scenario-specific acquisition stages (filtering,
	// enrichment) after the built-in dedup and quality stages and
	// before description + storage. Stages must be safe for
	// concurrent use.
	Stages []Stage
	// Registry receives node metrics; nil allocates a private one.
	Registry *metrics.Registry
	// Observer, when set, sees every batch that survives the
	// acquisition pipeline — the hook local real-time services
	// (paper §IV.C) attach to. Called synchronously on the ingest
	// path; implementations must be fast, safe for concurrent use,
	// and must not retain the batch.
	Observer BatchObserver
	// MaxPendingReadings bounds the per-type upward buffer during
	// parent outages; when exceeded, the oldest readings are shed
	// and counted in the <node>.flush.shed metric. Zero means
	// unbounded.
	MaxPendingReadings int
	// PendingShards sets how many hash shards back the per-type
	// pending buffers and description tags (rounded up to a power of
	// two). Zero selects the default (16); 1 restores a single
	// buffer.
	PendingShards int
	// FlushWorkers bounds how many batches a flush encodes and sends
	// concurrently. Sends are network-bound, so the default (4) is
	// independent of GOMAXPROCS; 1 restores the serial flush path.
	FlushWorkers int
	// MaxQueryPage bounds how many readings one query response may
	// carry; larger range scans stream in cursor-linked pages. Zero
	// selects protocol.DefaultPageLimit.
	MaxQueryPage int
}

// BatchObserver receives post-pipeline batches.
type BatchObserver interface {
	ObserveBatch(b *model.Batch)
}

func (c *Config) applyDefaults() error {
	if c.Spec.ID == "" {
		return errors.New("fognode: config needs a node spec")
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.Codec == 0 {
		c.Codec = aggregate.CodecNone
	}
	if !c.Codec.Valid() {
		return fmt.Errorf("fognode %s: invalid codec %d", c.Spec.ID, int(c.Codec))
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Minute
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.City == "" {
		c.City = "city"
	}
	if c.FlushWorkers <= 0 {
		c.FlushWorkers = 4
	}
	if c.MaxQueryPage <= 0 {
		c.MaxQueryPage = protocol.DefaultPageLimit
	}
	return nil
}

// Node is a fog node at layer 1 or 2. Safe for concurrent use.
type Node struct {
	cfg       Config
	store     *store.TimeSeries
	deduper   *aggregate.Deduper
	describer *describe.Describer
	stages    []Stage

	shards    []pendingShard
	shardMask uint32

	ingestedBatches *metrics.Counter
	ingestedReads   *metrics.Counter
	flushedBatches  *metrics.Counter
	flushedBytes    *metrics.Counter
	flushErrors     *metrics.Counter
	rejectedReads   *metrics.Counter
	shedReads       *metrics.Counter

	// scratch recycles per-flush-worker buffers (wire encoding,
	// sealed payload, collected batch slice) so steady-state flushes
	// do not touch the heap.
	scratch sync.Pool

	lc *lifecycle
}

// flushScratch is the reusable state of one flush worker: the
// sealer's wire-encode buffer, the sealed-payload buffer handed to
// the transport, and the batch slice the flush collector fills.
// Payload buffers may be reused immediately after Transport.Send
// returns (transports do not retain them — see transport.Transport).
type flushScratch struct {
	sealer  protocol.Sealer
	payload []byte
	batches []*model.Batch
}

func (n *Node) getScratch() *flushScratch {
	if sc, ok := n.scratch.Get().(*flushScratch); ok {
		return sc
	}
	return &flushScratch{}
}

func (n *Node) putScratch(sc *flushScratch) {
	for i := range sc.batches {
		sc.batches[i] = nil // do not retain flushed batches
	}
	sc.batches = sc.batches[:0]
	// Don't let one outlier batch pin a giant buffer in the pool.
	const maxKeep = 1 << 20
	if cap(sc.payload) > maxKeep {
		sc.payload = nil
	}
	sc.sealer.Trim(maxKeep)
	n.scratch.Put(sc)
}

// New builds a node.
func New(cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	district := ""
	if cfg.Spec.Layer == topology.LayerFog2 {
		district = cfg.Spec.Name
	}
	n := &Node{
		cfg:       cfg,
		store:     store.NewTimeSeries(cfg.Retention),
		deduper:   aggregate.NewDeduper(),
		describer: describe.NewDescriber(cfg.City, district, cfg.Spec.Name, cfg.Spec.Centroid, "f2c"),
		shards:    newPendingShards(cfg.PendingShards),
		lc:        newLifecycle(),
	}
	n.shardMask = uint32(len(n.shards) - 1)
	reg := cfg.Registry
	prefix := cfg.Spec.ID + "."
	n.ingestedBatches = reg.Counter(prefix + "ingest.batches")
	n.ingestedReads = reg.Counter(prefix + "ingest.readings")
	n.flushedBatches = reg.Counter(prefix + "flush.batches")
	n.flushedBytes = reg.Counter(prefix + "flush.bytes")
	n.flushErrors = reg.Counter(prefix + "flush.errors")
	n.rejectedReads = reg.Counter(prefix + "ingest.rejected")
	n.shedReads = reg.Counter(prefix + "flush.shed")

	if cfg.Dedup {
		n.stages = append(n.stages, dedupStage{deduper: n.deduper})
	}
	if cfg.Quality {
		n.stages = append(n.stages, qualityStage{
			assessor: quality.NewAssessor(nil),
			rejected: n.rejectedReads,
		})
	}
	n.stages = append(n.stages, cfg.Stages...)
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.cfg.Spec.ID }

// Layer returns the node's hierarchy layer.
func (n *Node) Layer() topology.Layer { return n.cfg.Spec.Layer }

// Ingest runs the acquisition pipeline on a batch: redundant-data
// elimination (when enabled), quality assessment, any configured
// custom stages, description tagging, temporal storage, and queueing
// for the next upward flush. Safe to call concurrently; ingests of
// different sensor types proceed on disjoint shards.
func (n *Node) Ingest(b *model.Batch) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	n.ingestedBatches.Inc()

	sc := &StageContext{NodeID: n.cfg.Spec.ID, Now: n.cfg.Clock.Now(), Score: 1}
	for _, stage := range n.stages {
		var err error
		if b, err = stage.Process(sc, b); err != nil {
			return fmt.Errorf("fognode %s: ingest: stage %s: %w", n.cfg.Spec.ID, stage.Name(), err)
		}
	}
	tags := n.describer.Describe(b, sc.Score)

	sh := n.shardFor(b.TypeName)
	sh.mu.Lock()
	sh.tags[b.TypeName] = tags
	sh.mu.Unlock()

	if len(b.Readings) == 0 {
		return nil
	}
	n.ingestedReads.Add(int64(len(b.Readings)))

	if err := n.store.Append(b); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	n.enqueue(sh, b)
	if n.cfg.Observer != nil {
		n.cfg.Observer.ObserveBatch(b)
	}
	return nil
}

// enqueue merges a filtered batch into the per-type pending buffer
// that the next flush will move upward, shedding the oldest readings
// when a bound is configured and exceeded (prolonged parent outage).
func (n *Node) enqueue(sh *pendingShard, b *model.Batch) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.pending[b.TypeName]
	if !ok {
		cp := b.Clone()
		cp.NodeID = n.cfg.Spec.ID // upward batches carry this node's identity
		sh.pending[b.TypeName] = cp
		cur = cp
	} else {
		cur.Readings = append(cur.Readings, b.Readings...)
	}
	n.boundPendingLocked(cur)
}

// boundPendingLocked sheds the oldest readings of a pending batch
// when the configured bound is exceeded. The caller holds the lock of
// the shard owning the batch.
func (n *Node) boundPendingLocked(cur *model.Batch) {
	max := n.cfg.MaxPendingReadings
	if max <= 0 || len(cur.Readings) <= max {
		return
	}
	shed := len(cur.Readings) - max
	n.shedReads.Add(int64(shed))
	kept := make([]model.Reading, max)
	copy(kept, cur.Readings[shed:])
	cur.Readings = kept
}

// ShedReadings reports how many buffered readings were dropped under
// the MaxPendingReadings bound.
func (n *Node) ShedReadings() int64 { return n.shedReads.Value() }

// PendingBatches returns how many per-type batches await flushing.
func (n *Node) PendingBatches() int {
	total := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		total += len(sh.pending)
		sh.mu.Unlock()
	}
	return total
}

// Latest serves the real-time read path.
func (n *Node) Latest(sensorID string) (model.Reading, bool) {
	return n.store.Latest(sensorID)
}

// Query serves range reads from the temporal store.
func (n *Node) Query(typeName string, from, to time.Time) []model.Reading {
	return n.store.QueryRange(typeName, from, to)
}

// QueryPage serves one bounded page of a range read: at most
// min(limit, MaxQueryPage) readings plus the cursor resuming the
// scan. It implements query.LocalStore.
func (n *Node) QueryPage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error) {
	if limit <= 0 || limit > n.cfg.MaxQueryPage {
		limit = n.cfg.MaxQueryPage
	}
	return n.store.QueryRangePage(typeName, from, to, limit, cursor)
}

// Tags returns the latest description tags for a type.
func (n *Node) Tags(typeName string) (describe.Tags, bool) {
	sh := n.shardFor(typeName)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.tags[typeName]
	return t, ok
}

// DedupEliminatedShare reports the measured redundant share removed.
func (n *Node) DedupEliminatedShare() float64 { return n.deduper.EliminatedShare() }

// DedupStats returns the readings observed and kept by the
// redundant-data-elimination phase.
func (n *Node) DedupStats() (in, kept int64) { return n.deduper.Stats() }

// Flush seals all pending batches and sends them to the parent,
// compressed with the configured codec. Batches that fail to send
// stay queued for the next flush. It also applies retention eviction.
func (n *Node) Flush(ctx context.Context) error {
	return n.flush(ctx, nil)
}

// FlushCategory moves only one category's pending data upward — the
// paper's per-data-class update-frequency policy ("the smart city
// business model can decide ... the frequency of updating to upper
// levels"). Other categories stay buffered for their own schedule.
func (n *Node) FlushCategory(ctx context.Context, cat model.Category) error {
	if !cat.Valid() {
		return fmt.Errorf("fognode %s: flush: invalid category %d", n.cfg.Spec.ID, int(cat))
	}
	return n.flush(ctx, func(b *model.Batch) bool { return b.Category == cat })
}

// flush moves pending batches matching the filter (nil = all) upward,
// encoding and sending with a bounded worker pool. Within one flush,
// each sensor type is exactly one in-flight batch, so worker
// interleaving cannot reorder a type's readings. (As before the
// refactor, two overlapping Flush calls can deliver a type's batches
// out of order when the earlier one fails and requeues.)
func (n *Node) flush(ctx context.Context, match func(*model.Batch) bool) error {
	defer n.store.Evict(n.cfg.Clock.Now())

	sc := n.getScratch()
	defer n.putScratch(sc)
	batches := sc.batches
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for typ, b := range sh.pending {
			if match == nil || match(b) {
				batches = append(batches, b)
				delete(sh.pending, typ)
			}
		}
		sh.mu.Unlock()
	}
	sc.batches = batches
	if len(batches) == 0 {
		return nil
	}
	// Deterministic send/error order for tests and accounting.
	sort.Slice(batches, func(i, j int) bool { return batches[i].TypeName < batches[j].TypeName })

	if n.cfg.Spec.Parent == "" {
		for _, b := range batches {
			n.requeue(b)
		}
		return fmt.Errorf("%w: %s", ErrNoParent, n.cfg.Spec.ID)
	}
	if n.cfg.Transport == nil {
		for _, b := range batches {
			n.requeue(b)
		}
		return fmt.Errorf("fognode %s: no transport configured", n.cfg.Spec.ID)
	}

	now := n.cfg.Clock.Now()
	errs := make([]error, len(batches))
	workers := n.cfg.FlushWorkers
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers <= 1 {
		for i, b := range batches {
			errs[i] = n.sendBatch(ctx, b, now, sc)
		}
		return errors.Join(errs...)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wsc := n.getScratch()
			defer n.putScratch(wsc)
			for i := range jobs {
				errs[i] = n.sendBatch(ctx, batches[i], now, wsc)
			}
		}()
	}
	for i := range batches {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}

// sendBatch seals one batch into the worker's scratch buffers and
// sends it to the parent, requeueing it on transport failure.
func (n *Node) sendBatch(ctx context.Context, b *model.Batch, now time.Time, sc *flushScratch) error {
	// Concurrent child flushes interleave arrival order at a combining
	// layer-2 node; sealing restores time order (ties broken by sensor
	// then value) so upward payloads — and their compressed sizes —
	// are deterministic for a given set of readings.
	sort.SliceStable(b.Readings, func(i, j int) bool {
		ri, rj := &b.Readings[i], &b.Readings[j]
		if !ri.Time.Equal(rj.Time) {
			return ri.Time.Before(rj.Time)
		}
		if ri.SensorID != rj.SensorID {
			return ri.SensorID < rj.SensorID
		}
		return ri.Value < rj.Value
	})
	b.Collected = now
	payload, err := sc.sealer.Seal(sc.payload[:0], b, n.cfg.Codec)
	if err != nil {
		return err
	}
	sc.payload = payload
	msg := transport.Message{
		From:    n.cfg.Spec.ID,
		To:      n.cfg.Spec.Parent,
		Kind:    transport.KindBatch,
		Class:   b.Category.String(),
		Payload: payload,
	}
	if _, err := n.cfg.Transport.Send(ctx, msg); err != nil {
		n.flushErrors.Inc()
		n.requeue(b)
		return fmt.Errorf("fognode %s: flush %s: %w", n.cfg.Spec.ID, b.TypeName, err)
	}
	n.flushedBatches.Inc()
	n.flushedBytes.Add(msg.WireSize())
	return nil
}

// requeue puts a failed batch back at the front of the pending
// buffer, re-applying the MaxPendingReadings bound so the buffer
// stays bounded across repeated flush failures (parent outage).
func (n *Node) requeue(b *model.Batch) {
	sh := n.shardFor(b.TypeName)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.pending[b.TypeName]
	if ok {
		// Preserve time order: failed batch first, newer readings after.
		merged := b.Clone()
		merged.Readings = append(merged.Readings, cur.Readings...)
		b = merged
	}
	sh.pending[b.TypeName] = b
	n.boundPendingLocked(b)
}

// Status reports the node's state.
func (n *Node) Status() protocol.StatusResponse {
	st := n.store.Stats()
	return protocol.StatusResponse{
		NodeID:          n.cfg.Spec.ID,
		Layer:           n.cfg.Spec.Layer.String(),
		StoredReadings:  st.Readings,
		StoredSeries:    st.Series,
		PendingBatches:  n.PendingBatches(),
		IngestedBatches: n.ingestedBatches.Value(),
		DedupEliminated: n.DedupEliminatedShare(),
	}
}

var _ transport.Handler = (*Node)(nil)

// Handle implements transport.Handler: child batches, queries and
// control commands.
func (n *Node) Handle(ctx context.Context, msg transport.Message) ([]byte, error) {
	switch msg.Kind {
	case transport.KindBatch:
		b, _, err := protocol.DecodeBatchPayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		if err := n.Ingest(b); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case transport.KindQuery:
		return n.handleQuery(msg.Payload)
	case transport.KindSummary:
		return n.handleSummary(msg.Payload)
	case transport.KindControl:
		return n.handleControl(ctx, msg.Payload)
	default:
		return nil, fmt.Errorf("fognode %s: unsupported message kind %q", n.cfg.Spec.ID, msg.Kind)
	}
}

func (n *Node) handleSummary(payload []byte) ([]byte, error) {
	var req protocol.SummaryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	from, to := req.Range()
	sum := aggregate.Summarize(n.Query(req.TypeName, from, to))
	return protocol.EncodeJSON(protocol.SummaryResponse{Summary: sum})
}

// handleQuery serves the binary paged read protocol: latest lookups
// return a one-reading page, range scans return at most MaxQueryPage
// readings plus a resume cursor. Pages travel the sealed-batch wire
// path compressed with the node's upward codec.
func (n *Node) handleQuery(payload []byte) ([]byte, error) {
	var req protocol.QueryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var page protocol.QueryPage
	if req.SensorID != "" {
		if r, ok := n.Latest(req.SensorID); ok {
			page.Found = true
			page.Readings = []model.Reading{r}
		}
	} else {
		from, to := req.Range()
		readings, next, err := n.QueryPage(req.TypeName, from, to, req.Limit, req.Cursor)
		if err != nil {
			return nil, fmt.Errorf("fognode %s: query: %w", n.cfg.Spec.ID, err)
		}
		page.Readings = readings
		page.NextCursor = next
		page.Found = len(readings) > 0 || next != ""
	}
	return protocol.EncodeQueryPage(n.cfg.Spec.ID, page, n.cfg.Codec)
}

func (n *Node) handleControl(ctx context.Context, payload []byte) ([]byte, error) {
	var req protocol.ControlRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	switch req.Op {
	case protocol.OpFlush:
		if err := n.Flush(ctx); err != nil {
			return nil, err
		}
		return []byte("flushed"), nil
	case protocol.OpStatus:
		return protocol.EncodeJSON(n.Status())
	default:
		return nil, fmt.Errorf("fognode %s: unknown control op %q", n.cfg.Spec.ID, req.Op)
	}
}
