// Package fognode implements the fog node runtime used at both fog
// layers of the F2C hierarchy (paper §IV): the acquisition pipeline
// (collection -> redundant-data elimination -> quality -> description)
// at layer 1, temporal storage with retention for real-time access,
// combination of child batches at layer 2, and the periodic upward
// flusher whose frequency "can be strategically decided in order to
// accommodate it to the network traffic".
//
// The acquisition pipeline is a sequence of composable Stage values
// running over hash-sharded per-type state, so concurrent Ingest
// calls on different sensor types never contend on a node-wide lock,
// and flushes move the sharded pending buffers upward with a bounded
// worker pool.
//
// Overload is handled in three tiers. Admission (Config.Scheduler): a
// per-class weighted-fair scheduler gates Handle so queries keep their
// share of the node's capacity under an ingest burst, rejecting an
// overflowing class fast with the typed overload error. Degradation
// (Config.DegradeToSummary): when the MaxPendingReadings bound trims a
// type's upward buffer, the trimmed readings fold into per-window
// decomposable summaries pushed upward at the next flush — resolution
// is lost, counts are not; raw shed remains only as the last resort.
// Adaptation (Config.Adaptive): an EWMA of parent RTT plus queue depth
// steers the flush batch size and interval between configured bounds,
// halving on backpressure and ramping while the link is healthy.
package fognode

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/cq"
	"f2c/internal/describe"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/quality"
	"f2c/internal/sched"
	"f2c/internal/segment"
	"f2c/internal/sim"
	"f2c/internal/store"
	"f2c/internal/topology"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// ErrNoParent is returned by Flush on a node with no upward peer.
var ErrNoParent = errors.New("fognode: node has no parent")

// Config configures a Node.
type Config struct {
	// Spec is the node's place in the topology.
	Spec topology.NodeSpec
	// City names the deployment for data description.
	City string
	// Clock provides time (virtual in simulations).
	Clock sim.Clock
	// Transport reaches the parent node; may be nil for leaf-only
	// experiments (Flush then fails with ErrNoParent).
	Transport transport.Transport
	// Retention bounds the temporal store (0 = keep forever).
	Retention time.Duration
	// FlushInterval drives the background flusher started by Start.
	FlushInterval time.Duration
	// Codec compresses upward transfers.
	Codec aggregate.Codec
	// Dedup enables redundant-data elimination on ingest (the paper
	// applies it at fog layer 1).
	Dedup bool
	// Quality enables the data-quality phase on ingest.
	Quality bool
	// Stages appends scenario-specific acquisition stages (filtering,
	// enrichment) after the built-in dedup and quality stages and
	// before description + storage. Stages must be safe for
	// concurrent use.
	Stages []Stage
	// Registry receives node metrics; nil allocates a private one.
	Registry *metrics.Registry
	// Observer, when set, sees every batch that survives the
	// acquisition pipeline — the hook local real-time services
	// (paper §IV.C) attach to. Called synchronously on the ingest
	// path; implementations must be fast, safe for concurrent use,
	// and must not retain the batch.
	Observer BatchObserver
	// MaxPendingReadings bounds the per-type upward buffer during
	// parent outages; when exceeded, the oldest readings are shed
	// and counted in the <node>.flush.shed metric. Zero means
	// unbounded.
	MaxPendingReadings int
	// DegradeToSummary changes what the MaxPendingReadings bound does
	// with the oldest readings: instead of shedding them raw, they are
	// folded into per-window decomposable summaries and pushed upward
	// at the next flush (transport.KindSummaryPush) — the node loses
	// resolution, not information. Counted in flush.degraded_readings
	// and flush.summaries_emitted; raw shed remains the last resort
	// once the summary retry tier overflows.
	DegradeToSummary bool
	// DegradeWindow is the time-window granularity degraded readings
	// are summarized at (default 1 minute).
	DegradeWindow time.Duration
	// MaxDegradedWindows bounds how many distinct windows one type's
	// degrade buffer may hold (default 64); beyond it new readings
	// fold into the nearest existing window — coarser, still counted.
	MaxDegradedWindows int
	// MaxSummaryRetry bounds a type's unsent summary-push retry queue
	// (default 64); beyond it the oldest push is dropped and its
	// readings finally counted as shed.
	MaxSummaryRetry int
	// MaxAlertRetry bounds a type's unsent continuous-query alert
	// retry queue (default 64); beyond it the oldest push's alert
	// instances fold into its successor — alerts are re-batched, not
	// dropped, until maxAlertsPerPush is also exceeded.
	MaxAlertRetry int
	// AlertObserver, when set, sees every alert push this node's own
	// subscriptions fire, at seal time — the hook the exactly-once
	// chaos ledger (and local alerting sinks) attach to. Called
	// synchronously outside the shard locks; implementations must be
	// fast, safe for concurrent use, and must not retain the push.
	// Replayed journal records do not re-invoke it; a window refired
	// after a crash that beat its seal record does (same instance
	// identity, so set-semantics consumers are unaffected).
	AlertObserver func(push protocol.AlertPush)
	// Scheduler, when set, gates this node's handler path with a
	// per-class weighted-fair admission scheduler (ingest / query /
	// relay), so latency-sensitive traffic never starves behind bulk
	// ingest at the node itself. Each node builds its own scheduler
	// instance from these shared options.
	Scheduler *sched.Options
	// Adaptive, when set, replaces the fixed flush cadence and
	// whole-buffer batch sealing with the adaptive controller: an EWMA
	// of parent RTT plus queue depth steers batch size and flush
	// interval between configured bounds, backing off on backpressure.
	Adaptive *AdaptiveConfig
	// PendingShards sets how many hash shards back the per-type
	// pending buffers and description tags (rounded up to a power of
	// two). Zero selects the default (16); 1 restores a single
	// buffer.
	PendingShards int
	// FlushWorkers bounds how many batches a flush encodes and sends
	// concurrently. Sends are network-bound, so the default (4) is
	// independent of GOMAXPROCS; 1 restores the serial flush path.
	FlushWorkers int
	// MaxQueryPage bounds how many readings one query response may
	// carry; larger range scans stream in cursor-linked pages. Zero
	// selects protocol.DefaultPageLimit.
	MaxQueryPage int
	// Siblings are peer fog nodes at this node's own layer that can
	// relay batches to their parent when this node's parent is
	// unreachable (the distributed-fog failover path). Empty disables
	// sibling relay.
	Siblings []string
	// RetryBase enables jittered exponential backoff on parent
	// failures: after a failed flush the parent is re-probed no
	// sooner than RetryBase (doubling per consecutive failure up to
	// RetryMax, jittered over [d/2, d]). Zero disables backoff and
	// failover — every flush attempts the parent, the pre-resilience
	// behavior.
	RetryBase time.Duration
	// RetryMax caps the backoff window (default 64 x RetryBase).
	RetryMax time.Duration
	// FailoverAfter is how many consecutive parent failures switch
	// the node to sibling relay (default 3; effective only with
	// Siblings configured and RetryBase > 0).
	FailoverAfter int
	// FailoverSeed seeds the backoff jitter (0 derives one from the
	// node ID), keeping chaos runs reproducible.
	FailoverSeed int64
	// ReplayWindow bounds how many recently delivered batch sequences
	// the node remembers per origin for at-least-once dedup on its
	// receive path. Zero selects protocol.DefaultReplayWindow.
	ReplayWindow int
	// Durability, when set, makes the node journal its upward-delivery
	// state (accepted readings, sealed delivery sequences, commits,
	// sheds, replay-filter marks) to a write-ahead log with periodic
	// snapshots in Durability.Dir, and recover that state at
	// construction — so a restarted node resumes with its pending
	// shards, retry queues, sequence counter and dedup marks intact
	// instead of starting empty. Nil (the default) keeps the node
	// fully in-memory.
	Durability *wal.Config
	// Storage, when set, backs the temporal store with the tiered
	// segment engine (WAL-journaled memtable flushing to mmap'd
	// on-disk segments) instead of the in-RAM TimeSeries, bounding
	// resident memory to roughly the memtable cap regardless of
	// retention. Retention, Registry and MetricsPrefix default from
	// the node config when zero. The segment store recovers itself at
	// Open, so the delivery journal's replay skips re-appending
	// readings into it.
	Storage *segment.Options
}

// TemporalStore is the node's local time-series storage: the in-RAM
// store.TimeSeries or the durable segment.Store, selected by
// Config.Storage. Both serve the same cursor contract.
type TemporalStore interface {
	Append(b *model.Batch) error
	Latest(sensorID string) (model.Reading, bool)
	QueryRange(typeName string, from, to time.Time) []model.Reading
	QueryRangePage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error)
	Evict(now time.Time) int
	Stats() store.Stats
}

// BatchObserver receives post-pipeline batches.
type BatchObserver interface {
	ObserveBatch(b *model.Batch)
}

func (c *Config) applyDefaults() error {
	if c.Spec.ID == "" {
		return errors.New("fognode: config needs a node spec")
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.Codec == 0 {
		c.Codec = aggregate.CodecNone
	}
	if !c.Codec.Valid() {
		return fmt.Errorf("fognode %s: invalid codec %d", c.Spec.ID, int(c.Codec))
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Minute
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.City == "" {
		c.City = "city"
	}
	if c.FlushWorkers <= 0 {
		c.FlushWorkers = 4
	}
	if c.MaxQueryPage <= 0 {
		c.MaxQueryPage = protocol.DefaultPageLimit
	}
	if c.RetryBase > 0 && c.RetryMax < c.RetryBase {
		c.RetryMax = 64 * c.RetryBase
	}
	if c.FailoverAfter <= 0 {
		c.FailoverAfter = 3
	}
	if c.DegradeWindow <= 0 {
		c.DegradeWindow = time.Minute
	}
	if c.MaxDegradedWindows <= 0 {
		c.MaxDegradedWindows = 64
	}
	if c.MaxSummaryRetry <= 0 {
		c.MaxSummaryRetry = 64
	}
	if c.MaxAlertRetry <= 0 {
		c.MaxAlertRetry = 64
	}
	return nil
}

// Node is a fog node at layer 1 or 2. Safe for concurrent use.
type Node struct {
	cfg   Config
	store TemporalStore
	// segStore aliases store when the tiered segment engine backs it
	// (nil on an in-RAM node): it owns on-disk state that must be
	// closed with the node, and it recovers itself, so the delivery
	// journal must not replay readings into it.
	segStore  *segment.Store
	deduper   *aggregate.Deduper
	describer *describe.Describer
	stages    []Stage

	shards    []pendingShard
	shardMask uint32

	// up is the parent-link retry/backoff/failover state machine;
	// replay dedupes at-least-once deliveries on the receive path;
	// seq numbers this node's outgoing sealed batches.
	up     *upstream
	replay *protocol.ReplayFilter
	seq    atomic.Uint64

	// journal is the durability write-ahead log (nil when off).
	// flightMu excludes checkpoints (write side) from flushes (read
	// side): a checkpoint must not run while collected batches are in
	// flight outside the shards, or their seal records could rotate
	// away while the batches still await a retry.
	journal  *journal
	flightMu sync.RWMutex

	// sched gates the handler path per traffic class (nil = no
	// admission control); ctl is the adaptive flush controller (nil =
	// fixed cadence, whole-buffer batches).
	sched *sched.Scheduler
	ctl   *flushController

	// routes forwards edge ingest of sensor types whose ownership
	// migrated to a sibling (see migrate.go); routeMu guards it.
	routeMu sync.RWMutex
	routes  map[string]string

	// cqe evaluates standing continuous-query subscriptions in the
	// ingest path (see alerts.go); recoveredAlerts carries alerts a
	// journal recovery refired, sealed by New once the journal is
	// attached so their seal records land properly.
	cqe             *cq.Engine
	recoveredAlerts []cq.Alert

	ingestedBatches  *metrics.Counter
	ingestedReads    *metrics.Counter
	flushedBatches   *metrics.Counter
	flushedBytes     *metrics.Counter
	flushErrors      *metrics.Counter
	rejectedReads    *metrics.Counter
	shedReads        *metrics.Counter
	outageDrops      *metrics.Counter
	relayedBatches   *metrics.Counter
	deferredFlushes  *metrics.Counter
	dupBatches       *metrics.Counter
	degradedReads    *metrics.Counter
	summariesEmitted *metrics.Counter
	degradedIn       *metrics.Counter
	migOutTransfers  *metrics.Counter
	migOutReads      *metrics.Counter
	migOutBytes      *metrics.Counter
	migInTransfers   *metrics.Counter
	migInReads       *metrics.Counter
	alertsFired      *metrics.Counter
	alertPushesOut   *metrics.Counter
	alertsIn         *metrics.Counter
	alertFolds       *metrics.Counter
	alertsShed       *metrics.Counter

	// scratch recycles per-flush-worker buffers (wire encoding,
	// sealed payload, collected batch slice) so steady-state flushes
	// do not touch the heap.
	scratch sync.Pool

	lc *lifecycle
}

// flushScratch is the reusable state of one flush worker: the
// sealer's wire-encode buffer and the sealed-payload buffer handed to
// the transport. Payload buffers may be reused immediately after
// Transport.Send returns (transports do not retain them — see
// transport.Transport).
type flushScratch struct {
	sealer  protocol.Sealer
	payload []byte
}

func (n *Node) getScratch() *flushScratch {
	if sc, ok := n.scratch.Get().(*flushScratch); ok {
		return sc
	}
	return &flushScratch{}
}

func (n *Node) putScratch(sc *flushScratch) {
	// Don't let one outlier batch pin a giant buffer in the pool.
	const maxKeep = 1 << 20
	if cap(sc.payload) > maxKeep {
		sc.payload = nil
	}
	sc.sealer.Trim(maxKeep)
	n.scratch.Put(sc)
}

// New builds a node.
func New(cfg Config) (*Node, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	district := ""
	if cfg.Spec.Layer == topology.LayerFog2 {
		district = cfg.Spec.Name
	}
	n := &Node{
		cfg:       cfg,
		deduper:   aggregate.NewDeduper(),
		describer: describe.NewDescriber(cfg.City, district, cfg.Spec.Name, cfg.Spec.Centroid, "f2c"),
		shards:    newPendingShards(cfg.PendingShards),
		up:        newUpstream(&cfg),
		replay:    protocol.NewReplayFilter(cfg.ReplayWindow),
		routes:    make(map[string]string),
		cqe:       cq.NewEngine(),
		lc:        newLifecycle(),
	}
	if cfg.Storage != nil {
		so := *cfg.Storage
		if so.Retention == 0 {
			so.Retention = cfg.Retention
		}
		if so.Registry == nil {
			so.Registry = cfg.Registry
		}
		if so.MetricsPrefix == "" {
			so.MetricsPrefix = cfg.Spec.ID + "."
		}
		gs, err := segment.Open(so)
		if err != nil {
			return nil, fmt.Errorf("fognode %s: storage: %w", cfg.Spec.ID, err)
		}
		n.store, n.segStore = gs, gs
	} else {
		n.store = store.NewTimeSeries(cfg.Retention)
	}
	n.shardMask = uint32(len(n.shards) - 1)
	// Delivery sequences start at a random per-process base: a
	// restarted node must not reuse its predecessor's sequences, or
	// the parent's replay filter (which remembers the old process
	// under the same origin) would falsely dedupe the new process's
	// first batches. The base is halved for overflow headroom and
	// forced nonzero (sequence 0 means "unidentified").
	n.seq.Store(rand.Uint64()>>1 | 1)
	reg := cfg.Registry
	prefix := cfg.Spec.ID + "."
	n.ingestedBatches = reg.Counter(prefix + "ingest.batches")
	n.ingestedReads = reg.Counter(prefix + "ingest.readings")
	n.flushedBatches = reg.Counter(prefix + "flush.batches")
	n.flushedBytes = reg.Counter(prefix + "flush.bytes")
	n.flushErrors = reg.Counter(prefix + "flush.errors")
	n.rejectedReads = reg.Counter(prefix + "ingest.rejected")
	n.shedReads = reg.Counter(prefix + "flush.shed")
	n.outageDrops = reg.Counter(prefix + "flush.dropped_during_outage")
	n.relayedBatches = reg.Counter(prefix + "flush.relayed")
	n.deferredFlushes = reg.Counter(prefix + "flush.deferred")
	n.dupBatches = reg.Counter(prefix + "ingest.duplicates")
	n.degradedReads = reg.Counter(prefix + "flush.degraded_readings")
	n.summariesEmitted = reg.Counter(prefix + "flush.summaries_emitted")
	n.degradedIn = reg.Counter(prefix + "ingest.degraded_in")
	n.migOutTransfers = reg.Counter(prefix + "migrate.out_transfers")
	n.migOutReads = reg.Counter(prefix + "migrate.out_readings")
	n.migOutBytes = reg.Counter(prefix + "migrate.out_bytes")
	n.migInTransfers = reg.Counter(prefix + "migrate.in_transfers")
	n.migInReads = reg.Counter(prefix + "migrate.in_readings")
	n.alertsFired = reg.Counter(prefix + "cq.alerts_fired")
	n.alertPushesOut = reg.Counter(prefix + "cq.pushes_out")
	n.alertsIn = reg.Counter(prefix + "cq.alerts_in")
	n.alertFolds = reg.Counter(prefix + "cq.retry_folds")
	n.alertsShed = reg.Counter(prefix + "cq.alerts_shed")
	if cfg.Scheduler != nil {
		n.sched = sched.New(*cfg.Scheduler, cfg.Clock, reg, prefix+"sched.")
	}
	if cfg.Adaptive != nil {
		n.ctl = newFlushController(*cfg.Adaptive, cfg.FlushInterval, reg, prefix)
	}

	if cfg.Dedup {
		n.stages = append(n.stages, dedupStage{deduper: n.deduper})
	}
	if cfg.Quality {
		n.stages = append(n.stages, qualityStage{
			assessor: quality.NewAssessor(nil),
			rejected: n.rejectedReads,
		})
	}
	n.stages = append(n.stages, cfg.Stages...)

	if cfg.Durability != nil {
		j, err := openJournal(*cfg.Durability)
		if err != nil {
			if n.segStore != nil {
				n.segStore.Discard()
			}
			return nil, fmt.Errorf("fognode %s: %w", cfg.Spec.ID, err)
		}
		if err := n.recover(j); err != nil {
			_ = j.close()
			if n.segStore != nil {
				n.segStore.Discard()
			}
			return nil, fmt.Errorf("fognode %s: %w", cfg.Spec.ID, err)
		}
		n.journal = j
		if len(n.recoveredAlerts) > 0 {
			// Windows recovery legitimately refired (their seal records
			// were lost with the crash) are sealed now, with the journal
			// attached so this life's records cover them.
			n.sealAlerts(n.recoveredAlerts)
			n.recoveredAlerts = nil
		}
	}
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.cfg.Spec.ID }

// Layer returns the node's hierarchy layer.
func (n *Node) Layer() topology.Layer { return n.cfg.Spec.Layer }

// Ingest runs the acquisition pipeline on a batch: redundant-data
// elimination (when enabled), quality assessment, any configured
// custom stages, description tagging, temporal storage, and queueing
// for the next upward flush. Safe to call concurrently; ingests of
// different sensor types proceed on disjoint shards.
func (n *Node) Ingest(b *model.Batch) error {
	return n.ingest(b, "", 0)
}

// ingest is Ingest plus the delivery mark of the transport hop that
// carried the batch (origin/seq zero for local edge ingests). On a
// durable node the mark is journaled atomically with the acceptance,
// so a recovered receiver either has both the readings and the dedup
// mark or neither — never a replayed batch it would re-accept.
func (n *Node) ingest(b *model.Batch, origin string, seq uint64) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	n.ingestedBatches.Inc()

	sc := &StageContext{NodeID: n.cfg.Spec.ID, Now: n.cfg.Clock.Now(), Score: 1}
	for _, stage := range n.stages {
		var err error
		if b, err = stage.Process(sc, b); err != nil {
			return fmt.Errorf("fognode %s: ingest: stage %s: %w", n.cfg.Spec.ID, stage.Name(), err)
		}
	}
	tags := n.describer.Describe(b, sc.Score)

	sh := n.shardFor(b.TypeName)
	sh.mu.Lock()
	sh.tags[b.TypeName] = tags
	sh.mu.Unlock()

	if len(b.Readings) == 0 {
		return nil
	}
	n.ingestedReads.Add(int64(len(b.Readings)))

	// An edge ingest of a type whose ownership migrated to a sibling
	// is forwarded to the new owner instead of queueing for this
	// node's own flush; sequenced arrivals keep the local path so
	// their (origin, seq) mark commits atomically with acceptance.
	if origin == "" {
		if target := n.Route(b.TypeName); target != "" {
			if err := n.ingestRouted(b, target); err != nil {
				return err
			}
			if err := n.store.Append(b); err != nil {
				return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
			}
			if n.cfg.Observer != nil {
				n.cfg.Observer.ObserveBatch(b)
			}
			n.observeAlerts(b)
			return nil
		}
	}

	// The enqueue is the durable acceptance gate and runs before the
	// local store append: a journal-rejected ingest must leave no
	// trace, or the sender's retry would duplicate readings in the
	// store.
	if err := n.enqueue(sh, b, origin, seq); err != nil {
		return err
	}
	if err := n.store.Append(b); err != nil {
		return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
	}
	if n.cfg.Observer != nil {
		n.cfg.Observer.ObserveBatch(b)
	}
	// Continuous queries evaluate incrementally here, on the accepted
	// batch — never by re-scanning the store.
	n.observeAlerts(b)
	return nil
}

// enqueue merges a filtered batch into the per-type pending buffer
// that the next flush will move upward, shedding the oldest buffered
// readings when a bound is configured and exceeded (prolonged parent
// outage). On a durable node the acceptance is journaled first, under
// the shard lock, so the log's record order matches the buffer's
// reading order; a journal failure rejects the ingest (the sender
// retries) instead of accepting data the node cannot preserve.
func (n *Node) enqueue(sh *pendingShard, b *model.Batch, origin string, seq uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n.journal != nil {
		if err := n.journal.appendBatch(n.cfg.Spec.ID, b, origin, seq); err != nil {
			return fmt.Errorf("fognode %s: ingest: %w", n.cfg.Spec.ID, err)
		}
	}
	cur, ok := sh.pending[b.TypeName]
	if !ok {
		cp := b.Clone()
		cp.NodeID = n.cfg.Spec.ID // upward batches carry this node's identity
		sh.pending[b.TypeName] = cp
	} else {
		cur.Readings = append(cur.Readings, b.Readings...)
	}
	n.boundTypeLocked(sh, b.TypeName)
	return nil
}

// boundTypeLocked enforces MaxPendingReadings across everything a
// type has buffered upward — the retry queue (failed sends held
// through an outage) plus the fresh pending buffer — trimming oldest
// first: the front of the retry queue, then the pending buffer's
// head. Without DegradeToSummary the trimmed readings are shed;
// readings dropped from the retry queue are additionally counted as
// DroppedDuringOutage: they were lost because the parent stayed
// unreachable past the buffer budget, the signal operators alarm on.
// With DegradeToSummary the trimmed readings are instead folded into
// the type's per-window degrade buffer (resolution lost, counts
// preserved) to be pushed upward at the next flush. Either way the
// trim itself is journaled (best effort) so recovery does not
// resurrect readings the bound already removed — degraded windows
// themselves are in-memory only. The caller holds the shard lock.
func (n *Node) boundTypeLocked(sh *pendingShard, typ string) {
	max := n.cfg.MaxPendingReadings
	if max <= 0 {
		return
	}
	total := 0
	for _, sb := range sh.retry[typ] {
		total += len(sb.b.Readings)
	}
	if p, ok := sh.pending[typ]; ok {
		total += len(p.Readings)
	}
	drop := total - max
	if drop <= 0 {
		return
	}
	if n.journal != nil {
		// Journal the trim so recovery does not resurrect readings the
		// bound already removed. Best-effort: losing the record
		// degrades toward re-delivery, never toward loss.
		_ = n.journal.appendShed(typ, drop)
	}
	degrade := n.cfg.DegradeToSummary
	q := sh.retry[typ]
	for drop > 0 && len(q) > 0 {
		head := q[0].b
		k := len(head.Readings)
		if k > drop {
			k = drop
		}
		if degrade {
			n.degradeLocked(sh, typ, head.Category, head.Readings[:k])
		} else {
			n.shedReads.Add(int64(k))
			n.outageDrops.Add(int64(k))
		}
		head.Readings = head.Readings[k:]
		drop -= k
		if len(head.Readings) == 0 {
			q[0] = sealedBatch{} // release the emptied batch
			q = q[1:]
		}
	}
	if len(q) == 0 {
		delete(sh.retry, typ)
	} else {
		sh.retry[typ] = q
	}
	if drop > 0 {
		p := sh.pending[typ]
		if degrade {
			n.degradeLocked(sh, typ, p.Category, p.Readings[:drop])
		} else {
			n.shedReads.Add(int64(drop))
		}
		kept := make([]model.Reading, len(p.Readings)-drop)
		copy(kept, p.Readings[drop:])
		p.Readings = kept
	}
}

// ShedReadings reports how many buffered readings were dropped under
// the MaxPendingReadings bound.
func (n *Node) ShedReadings() int64 { return n.shedReads.Value() }

// DroppedDuringOutage reports how many readings the bound shed from
// the retry queue — data lost because the parent stayed unreachable
// longer than the configured buffer budget could absorb.
func (n *Node) DroppedDuringOutage() int64 { return n.outageDrops.Value() }

// RelayedBatches reports how many batches reached the hierarchy
// through a sibling relay instead of the parent.
func (n *Node) RelayedBatches() int64 { return n.relayedBatches.Value() }

// DuplicateBatches reports how many at-least-once duplicate
// deliveries this node's receive path suppressed.
func (n *Node) DuplicateBatches() int64 { return n.dupBatches.Value() }

// DeferredFlushes reports how many flushes the backoff gate skipped
// outright (parent inside its retry window, no relay available).
func (n *Node) DeferredFlushes() int64 { return n.deferredFlushes.Value() }

// UpstreamState reports the parent-link state machine's mode
// (healthy, backoff or relay).
func (n *Node) UpstreamState() UpstreamState { return n.up.state() }

// PendingBatches returns how many delivery units await an upward
// flush: the per-type pending buffers, every batch parked on a retry
// queue, every unsent summary push, and each nonempty degrade buffer.
func (n *Node) PendingBatches() int {
	total := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		total += len(sh.pending)
		for _, q := range sh.retry {
			total += len(q)
		}
		for _, q := range sh.sumRetry {
			total += len(q)
		}
		for _, q := range sh.alerts {
			total += len(q)
		}
		for _, buf := range sh.degraded {
			if len(buf.windows) > 0 {
				total++
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// PendingReadings returns how many readings are buffered for upward
// delivery across all types (pending + retry) — the quantity
// MaxPendingReadings bounds per type.
func (n *Node) PendingReadings() int {
	total := 0
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		for _, b := range sh.pending {
			total += len(b.Readings)
		}
		for _, q := range sh.retry {
			for _, sb := range q {
				total += len(sb.b.Readings)
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// Latest serves the real-time read path.
func (n *Node) Latest(sensorID string) (model.Reading, bool) {
	return n.store.Latest(sensorID)
}

// Query serves range reads from the temporal store.
func (n *Node) Query(typeName string, from, to time.Time) []model.Reading {
	return n.store.QueryRange(typeName, from, to)
}

// QueryPage serves one bounded page of a range read: at most
// min(limit, MaxQueryPage) readings plus the cursor resuming the
// scan. It implements query.LocalStore.
func (n *Node) QueryPage(typeName string, from, to time.Time, limit int, cursor string) ([]model.Reading, string, error) {
	if limit <= 0 || limit > n.cfg.MaxQueryPage {
		limit = n.cfg.MaxQueryPage
	}
	return n.store.QueryRangePage(typeName, from, to, limit, cursor)
}

// Tags returns the latest description tags for a type.
func (n *Node) Tags(typeName string) (describe.Tags, bool) {
	sh := n.shardFor(typeName)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.tags[typeName]
	return t, ok
}

// DedupEliminatedShare reports the measured redundant share removed.
func (n *Node) DedupEliminatedShare() float64 { return n.deduper.EliminatedShare() }

// DedupStats returns the readings observed and kept by the
// redundant-data-elimination phase.
func (n *Node) DedupStats() (in, kept int64) { return n.deduper.Stats() }

// Flush seals all pending batches and sends them to the parent,
// compressed with the configured codec. Batches that fail to send
// stay queued for the next flush. It also applies retention eviction.
// On a durable node a flush is also the checkpoint safe point: when
// the journal has grown past its snapshot threshold, the delivery
// state is folded into a snapshot and the log truncated.
func (n *Node) Flush(ctx context.Context) error {
	n.flightMu.RLock()
	err := n.flush(ctx, nil)
	n.flightMu.RUnlock()
	n.maybeCheckpoint()
	return err
}

// FlushCategory moves only one category's pending data upward — the
// paper's per-data-class update-frequency policy ("the smart city
// business model can decide ... the frequency of updating to upper
// levels"). Other categories stay buffered for their own schedule.
func (n *Node) FlushCategory(ctx context.Context, cat model.Category) error {
	if !cat.Valid() {
		return fmt.Errorf("fognode %s: flush: invalid category %d", n.cfg.Spec.ID, int(cat))
	}
	n.flightMu.RLock()
	err := n.flush(ctx, func(b *model.Batch) bool { return b.Category == cat })
	n.flightMu.RUnlock()
	n.maybeCheckpoint()
	return err
}

// Checkpoint folds a durable node's delivery state — pending buffers,
// retry queues, sequence counter, replay-filter marks — into a
// snapshot and truncates the journal, bounding recovery time. It is a
// no-op on an in-memory node. Checkpoints exclude flushes (collected
// batches in flight outside the shards must not lose their seal
// records to a rotation) and hold every shard lock while encoding, so
// the snapshot is a consistent cut.
func (n *Node) Checkpoint() error {
	if n.journal == nil {
		return nil
	}
	n.flightMu.Lock()
	defer n.flightMu.Unlock()
	for i := range n.shards {
		n.shards[i].mu.Lock()
	}
	defer func() {
		for i := range n.shards {
			n.shards[i].mu.Unlock()
		}
	}()
	if err := n.journal.checkpoint(n.seq.Load(), n.replay, n.shards, n.cqe.Snapshot()); err != nil {
		return fmt.Errorf("fognode %s: checkpoint: %w", n.cfg.Spec.ID, err)
	}
	return nil
}

// maybeCheckpoint runs an automatic checkpoint when the journal has
// grown past its snapshot threshold. Errors are deliberately dropped:
// the journal keeps growing and the next safe point retries.
func (n *Node) maybeCheckpoint() {
	if n.journal != nil && n.journal.checkpointDue() {
		_ = n.Checkpoint()
	}
}

// typeWork is one sensor type's delivery unit for a flush: the retry
// queue (frozen sequences, oldest first) followed by the fresh
// pending batch(es), plus any degraded summary pushes (retried first,
// then the freshly sealed degrade buffer). A worker sends the batches
// in order and stops at the first failure, requeueing the unsent tail
// (summaries included), so one type's readings never arrive out of
// order within a flush.
type typeWork struct {
	typ       string
	batches   []sealedBatch
	summaries []sealedSummary
	alerts    []sealedAlert
}

// errDeferred marks a delivery skipped because the parent link is
// inside its backoff window and no sibling relay is available. The
// batch stays queued; the flush reports success (nothing was lost,
// nothing was attempted).
var errDeferred = errors.New("fognode: delivery deferred by backoff")

// flush moves pending batches matching the filter (nil = all) upward,
// encoding and sending with a bounded worker pool. Within one flush,
// each sensor type is one ordered delivery unit (retry queue first,
// then fresh data), so worker interleaving cannot reorder a type's
// readings. (As before, two overlapping Flush calls can deliver a
// type's batches out of order when the earlier one fails and
// requeues.)
func (n *Node) flush(ctx context.Context, match func(*model.Batch) bool) error {
	defer n.store.Evict(n.cfg.Clock.Now())

	now := n.cfg.Clock.Now()
	if !n.up.attemptAllowed(now) {
		// Inside the backoff window with no relay available: keep
		// everything queued and do not burn an attempt.
		n.deferredFlushes.Inc()
		return nil
	}

	// Close and seal continuous-query windows that ended before this
	// flush, so their alert pushes ride the same round.
	n.harvestAlerts(now)

	// seal freezes a pending buffer under its delivery sequence. It
	// runs under the shard lock so that, on a durable node, the seal
	// record lands in the journal strictly after the acceptance
	// records it covers and before any later ingest of the type.
	seal := func(typ string, p *model.Batch) sealedBatch {
		sb := sealedBatch{b: p, seq: n.seq.Add(1)}
		if n.journal != nil {
			// Best-effort: a lost seal record degrades toward
			// re-delivery under a fresh sequence, which the receiver's
			// replay filter absorbs.
			_ = n.journal.appendSeal(typ, sb.seq, len(p.Readings))
		}
		return sb
	}
	// sealChunks freezes a pending buffer as one batch, or — under the
	// adaptive controller — as a run of chunks bounded by the current
	// batch size, each under its own sequence (the journal's seal
	// replay peels the same chunks off the recovered buffer head).
	sealChunks := func(typ string, p *model.Batch) []sealedBatch {
		size := 0
		if n.ctl != nil {
			size = n.ctl.batchSize()
		}
		if size <= 0 || len(p.Readings) <= size {
			return []sealedBatch{seal(typ, p)}
		}
		out := make([]sealedBatch, 0, (len(p.Readings)+size-1)/size)
		for start := 0; start < len(p.Readings); start += size {
			end := start + size
			if end > len(p.Readings) {
				end = len(p.Readings)
			}
			cb := &model.Batch{
				NodeID: p.NodeID, TypeName: p.TypeName, Category: p.Category,
				Collected: p.Collected, Readings: p.Readings[start:end:end],
			}
			out = append(out, seal(typ, cb))
		}
		return out
	}
	var works []typeWork
	for i := range n.shards {
		sh := &n.shards[i]
		// idx tracks this shard's works entries by type so summary
		// collection joins the type's existing delivery unit (types are
		// owned by exactly one shard).
		idx := make(map[string]int)
		sh.mu.Lock()
		for typ, q := range sh.retry {
			if match != nil && !match(q[0].b) {
				continue
			}
			w := typeWork{typ: typ, batches: q}
			if p, ok := sh.pending[typ]; ok {
				w.batches = append(w.batches, sealChunks(typ, p)...)
				delete(sh.pending, typ)
			}
			delete(sh.retry, typ)
			idx[typ] = len(works)
			works = append(works, w)
		}
		for typ, b := range sh.pending {
			if match == nil || match(b) {
				idx[typ] = len(works)
				works = append(works, typeWork{typ: typ, batches: sealChunks(typ, b)})
				delete(sh.pending, typ)
			}
		}
		for typ, q := range sh.sumRetry {
			cat, _ := model.ParseCategory(q[0].push.Category)
			if match != nil && !match(&model.Batch{TypeName: typ, Category: cat}) {
				continue
			}
			j, ok := idx[typ]
			if !ok {
				j = len(works)
				idx[typ] = j
				works = append(works, typeWork{typ: typ})
			}
			works[j].summaries = append(works[j].summaries, q...)
			delete(sh.sumRetry, typ)
		}
		for typ, buf := range sh.degraded {
			if len(buf.windows) == 0 {
				continue
			}
			if match != nil && !match(&model.Batch{TypeName: typ, Category: buf.category}) {
				continue
			}
			ss := n.sealSummaryLocked(typ, buf)
			delete(sh.degraded, typ)
			j, ok := idx[typ]
			if !ok {
				j = len(works)
				idx[typ] = j
				works = append(works, typeWork{typ: typ})
			}
			works[j].summaries = append(works[j].summaries, ss)
		}
		for typ, q := range sh.alerts {
			if match != nil {
				cat, _ := model.ParseCategory(q[0].push.Category)
				if !match(&model.Batch{TypeName: typ, Category: cat}) {
					continue
				}
			}
			j, ok := idx[typ]
			if !ok {
				j = len(works)
				idx[typ] = j
				works = append(works, typeWork{typ: typ})
			}
			works[j].alerts = append(works[j].alerts, q...)
			delete(sh.alerts, typ)
		}
		sh.mu.Unlock()
	}
	if len(works) == 0 {
		if n.ctl != nil {
			n.ctl.onFlushDone(0)
		}
		return nil
	}
	// Deterministic send/error order for tests and accounting. (Retry
	// batches keep their frozen sequences; fresh batches were sealed
	// at collection, per type in buffer order.)
	sort.Slice(works, func(i, j int) bool { return works[i].typ < works[j].typ })

	if n.cfg.Spec.Parent == "" {
		n.requeueWorks(works)
		return fmt.Errorf("%w: %s", ErrNoParent, n.cfg.Spec.ID)
	}
	if n.cfg.Transport == nil {
		n.requeueWorks(works)
		return fmt.Errorf("fognode %s: no transport configured", n.cfg.Spec.ID)
	}

	errs := make([]error, len(works))
	workers := n.cfg.FlushWorkers
	if workers > len(works) {
		workers = len(works)
	}
	if workers <= 1 {
		sc := n.getScratch()
		for i := range works {
			errs[i] = n.sendTypeWork(ctx, works[i], now, sc)
		}
		n.putScratch(sc)
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wsc := n.getScratch()
				defer n.putScratch(wsc)
				for i := range jobs {
					errs[i] = n.sendTypeWork(ctx, works[i], now, wsc)
				}
			}()
		}
		for i := range works {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	if n.ctl != nil {
		// Close the adaptive round with the post-flush queue depth:
		// what the sends could not clear (plus what ingested meanwhile)
		// steers the next round's batch size and cadence.
		n.ctl.onFlushDone(n.PendingReadings())
	}
	return errors.Join(errs...)
}

// requeueWorks parks every batch and summary push of the given works
// back on its retry queue (sequences preserved).
func (n *Node) requeueWorks(works []typeWork) {
	for _, w := range works {
		n.requeue(w.batches)
		n.requeueSummaries(w.typ, w.summaries)
		n.requeueAlerts(w.typ, w.alerts)
	}
}

// sendTypeWork delivers one type's batches in order, then its summary
// pushes, stopping at the first failure and requeueing the unsent
// tail. A backoff deferral is not an error: the tail stays queued for
// a later flush.
func (n *Node) sendTypeWork(ctx context.Context, w typeWork, now time.Time, sc *flushScratch) error {
	for i := range w.batches {
		if err := n.sendBatch(ctx, w.batches[i], now, sc); err != nil {
			n.requeue(w.batches[i:])
			n.requeueSummaries(w.typ, w.summaries)
			n.requeueAlerts(w.typ, w.alerts)
			if errors.Is(err, errDeferred) {
				return nil
			}
			n.flushErrors.Inc()
			return fmt.Errorf("fognode %s: flush %s: %w", n.cfg.Spec.ID, w.typ, err)
		}
		if n.journal != nil {
			// Acknowledged upward: the sealed batch is no longer this
			// node's responsibility and recovery must not resend it.
			_ = n.journal.appendCommit(w.typ, w.batches[i].seq)
		}
	}
	for i := range w.summaries {
		if err := n.deliverSummary(ctx, w.summaries[i]); err != nil {
			n.requeueSummaries(w.typ, w.summaries[i:])
			n.requeueAlerts(w.typ, w.alerts)
			if errors.Is(err, errDeferred) {
				return nil
			}
			n.flushErrors.Inc()
			return fmt.Errorf("fognode %s: flush %s summaries: %w", n.cfg.Spec.ID, w.typ, err)
		}
	}
	for i := range w.alerts {
		if err := n.deliverAlert(ctx, w.alerts[i]); err != nil {
			n.requeueAlerts(w.typ, w.alerts[i:])
			if errors.Is(err, errDeferred) {
				return nil
			}
			n.flushErrors.Inc()
			return fmt.Errorf("fognode %s: flush %s alerts: %w", n.cfg.Spec.ID, w.typ, err)
		}
		if n.journal != nil {
			// Acknowledged upward: recovery must not resend this push.
			_ = n.journal.appendAlertCommit(w.typ, w.alerts[i].push.Origin, w.alerts[i].seq)
		}
	}
	return nil
}

// sendBatch seals one batch into the worker's scratch buffers under
// its frozen delivery sequence and hands it to the failover state
// machine: the parent when due, otherwise a sibling relay.
func (n *Node) sendBatch(ctx context.Context, sb sealedBatch, now time.Time, sc *flushScratch) error {
	b := sb.b
	// Concurrent child flushes interleave arrival order at a combining
	// layer-2 node; sealing restores time order so upward payloads —
	// and their compressed sizes — are deterministic for a given set
	// of readings.
	sortBatchReadings(b)
	b.Collected = now
	payload, err := sc.sealer.SealSeq(sc.payload[:0], b, n.cfg.Codec, sb.seq)
	if err != nil {
		return err
	}
	sc.payload = payload
	return n.deliver(ctx, payload, b.Category.String())
}

// deliver runs the failover policy for one sealed payload: probe the
// parent when the backoff window allows, fall over to sibling relays
// once the failure threshold is crossed, and defer when neither is
// available. A parent success heals the state machine.
func (n *Node) deliver(ctx context.Context, payload []byte, class string) error {
	now := n.cfg.Clock.Now()
	var parentErr error
	if n.up.parentDue(now) {
		msg := transport.Message{
			From:    n.cfg.Spec.ID,
			To:      n.cfg.Spec.Parent,
			Kind:    transport.KindBatch,
			Class:   class,
			Payload: payload,
		}
		start := time.Now()
		if _, err := n.cfg.Transport.Send(ctx, msg); err == nil {
			n.up.onParentSuccess()
			if n.ctl != nil {
				n.ctl.observeRTT(time.Since(start))
			}
			n.flushedBatches.Inc()
			n.flushedBytes.Add(msg.WireSize())
			return nil
		} else if errors.Is(err, transport.ErrBackpressure) || transport.IsOverload(err) {
			// Backpressure (window full) and overload (parent's
			// admission queue full) are not failure: the parent is
			// alive but saturated. Keep the batch queued and defer to
			// the next flush — escalating to sibling relays would only
			// shift the overload sideways. The adaptive controller
			// backs the batch size off in response.
			if n.ctl != nil {
				n.ctl.onBackpressure()
			}
			n.deferredFlushes.Inc()
			return errDeferred
		} else {
			parentErr = err
			n.up.onParentFailure(now)
		}
	}
	targets := n.up.relayTargets()
	if len(targets) == 0 {
		if parentErr != nil {
			return parentErr
		}
		return errDeferred
	}
	var relayErrs []error
	for _, sibling := range targets {
		msg := transport.Message{
			From:    n.cfg.Spec.ID,
			To:      sibling,
			Kind:    transport.KindRelay,
			Class:   class,
			Payload: payload,
		}
		if _, err := n.cfg.Transport.Send(ctx, msg); err == nil {
			n.relayedBatches.Inc()
			n.flushedBatches.Inc()
			n.flushedBytes.Add(msg.WireSize())
			return nil
		} else {
			relayErrs = append(relayErrs, err)
		}
	}
	if parentErr != nil {
		relayErrs = append([]error{parentErr}, relayErrs...)
	}
	return fmt.Errorf("parent and %d sibling relays failed: %w", len(targets), errors.Join(relayErrs...))
}

// requeue parks failed batches back on their type's retry queue in
// order, sequences frozen, re-applying the MaxPendingReadings bound
// so the buffer stays bounded across a long parent outage.
func (n *Node) requeue(batches []sealedBatch) {
	if len(batches) == 0 {
		return
	}
	typ := batches[0].b.TypeName
	sh := n.shardFor(typ)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.retry[typ] = append(sh.retry[typ], batches...)
	n.boundTypeLocked(sh, typ)
}

// Status reports the node's state.
func (n *Node) Status() protocol.StatusResponse {
	st := n.store.Stats()
	return protocol.StatusResponse{
		NodeID:          n.cfg.Spec.ID,
		Layer:           n.cfg.Spec.Layer.String(),
		StoredReadings:  st.Readings,
		StoredSeries:    st.Series,
		PendingBatches:  n.PendingBatches(),
		IngestedBatches: n.ingestedBatches.Value(),
		DedupEliminated: n.DedupEliminatedShare(),
	}
}

var _ transport.Handler = (*Node)(nil)

// Handle implements transport.Handler: child batches, degraded
// summary pushes, sibling relay requests, queries and control
// commands. With a scheduler configured, every message first passes
// the per-class weighted-fair admission gate, so a query is served by
// its 8x share of this node's handler capacity even while bulk ingest
// saturates it; an overflowing class is rejected fast with the typed
// overload error, which senders treat like backpressure.
func (n *Node) Handle(ctx context.Context, msg transport.Message) ([]byte, error) {
	if n.sched != nil {
		release, err := n.sched.Admit(ctx, transport.ClassNameOf(msg.Kind), int64(len(msg.Payload)))
		if err != nil {
			if errors.Is(err, sched.ErrOverloaded) {
				return nil, fmt.Errorf("fognode %s: %w", n.cfg.Spec.ID, transport.ErrOverloaded)
			}
			return nil, err
		}
		defer release()
	}
	switch msg.Kind {
	case transport.KindBatch:
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
		if err != nil {
			return nil, err
		}
		// At-least-once dedup: a sender whose acknowledgement was lost
		// retries the same sealed content under the same sequence; the
		// replay filter recognizes it and the duplicate is acknowledged
		// without re-ingesting. The filter is keyed by the batch's
		// origin (not msg.From) so a copy arriving through a sibling
		// relay and a direct retry dedupe against each other.
		if n.replay.Seen(b.NodeID, seq) {
			n.dupBatches.Inc()
			return []byte("ok"), nil
		}
		// The ingest journals the (origin, seq) mark atomically with
		// the acceptance on a durable node.
		if err := n.ingest(b, b.NodeID, seq); err != nil {
			return nil, err
		}
		// Mark only after a successful ingest: marking earlier would
		// blackhole the sender's retry of a batch that failed to land.
		n.replay.Mark(b.NodeID, seq)
		return []byte("ok"), nil
	case transport.KindSummaryPush:
		return n.handleSummaryPush(msg.Payload)
	case transport.KindAlertPush:
		return n.handleAlertPush(msg.Payload)
	case transport.KindRelay:
		return n.handleRelay(ctx, msg)
	case transport.KindMigrate:
		return n.handleMigrate(msg)
	case transport.KindQuery:
		return n.handleQuery(msg.Payload)
	case transport.KindSummary:
		return n.handleSummary(msg.Payload)
	case transport.KindControl:
		return n.handleControl(ctx, msg.Payload)
	default:
		return nil, fmt.Errorf("fognode %s: unsupported message kind %q", n.cfg.Spec.ID, msg.Kind)
	}
}

// handleRelay is the receiving half of sibling failover: a peer whose
// parent is unreachable hands us a sealed batch, and we forward it to
// our own parent unchanged — same payload bytes, so the batch keeps
// its origin identity and delivery sequence and the parent's replay
// filter can still dedupe it against a direct retry. Relays are never
// forwarded to another sibling, so a relay can traverse at most one
// extra hop and cannot loop.
func (n *Node) handleRelay(ctx context.Context, msg transport.Message) ([]byte, error) {
	if n.cfg.Spec.Parent == "" {
		return nil, fmt.Errorf("fognode %s: cannot relay: no parent", n.cfg.Spec.ID)
	}
	if n.cfg.Transport == nil {
		return nil, fmt.Errorf("fognode %s: cannot relay: no transport", n.cfg.Spec.ID)
	}
	if _, err := n.cfg.Transport.Send(ctx, transport.Message{
		From:    n.cfg.Spec.ID,
		To:      n.cfg.Spec.Parent,
		Kind:    transport.KindBatch,
		Class:   msg.Class,
		Payload: msg.Payload,
	}); err != nil {
		return nil, fmt.Errorf("fognode %s: relay to %s: %w", n.cfg.Spec.ID, n.cfg.Spec.Parent, err)
	}
	return []byte("ok"), nil
}

func (n *Node) handleSummary(payload []byte) ([]byte, error) {
	var req protocol.SummaryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	from, to := req.Range()
	sum := aggregate.Summarize(n.Query(req.TypeName, from, to))
	return protocol.EncodeJSON(protocol.SummaryResponse{Summary: sum})
}

// handleQuery serves the binary paged read protocol: latest lookups
// return a one-reading page, range scans return at most MaxQueryPage
// readings plus a resume cursor. Pages travel the sealed-batch wire
// path compressed with the node's upward codec.
func (n *Node) handleQuery(payload []byte) ([]byte, error) {
	var req protocol.QueryRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var page protocol.QueryPage
	if req.SensorID != "" {
		if r, ok := n.Latest(req.SensorID); ok {
			page.Found = true
			page.Readings = []model.Reading{r}
		}
	} else {
		from, to := req.Range()
		readings, next, err := n.QueryPage(req.TypeName, from, to, req.Limit, req.Cursor)
		if err != nil {
			return nil, fmt.Errorf("fognode %s: query: %w", n.cfg.Spec.ID, err)
		}
		page.Readings = readings
		page.NextCursor = next
		page.Found = len(readings) > 0 || next != ""
	}
	return protocol.EncodeQueryPage(n.cfg.Spec.ID, page, n.cfg.Codec)
}

func (n *Node) handleControl(ctx context.Context, payload []byte) ([]byte, error) {
	var req protocol.ControlRequest
	if err := protocol.DecodeJSON(payload, &req); err != nil {
		return nil, err
	}
	switch req.Op {
	case protocol.OpFlush:
		if err := n.Flush(ctx); err != nil {
			return nil, err
		}
		return []byte("flushed"), nil
	case protocol.OpStatus:
		return protocol.EncodeJSON(n.Status())
	case protocol.OpMetrics:
		return protocol.EncodeJSON(n.cfg.Registry.Export())
	case protocol.OpRoutes:
		return protocol.EncodeJSON(protocol.RoutesResponse{
			NodeID:               n.cfg.Spec.ID,
			Routes:               n.Routes(),
			MigratedOutTransfers: n.MigratedOutTransfers(),
			MigratedOutReadings:  n.MigratedOutReadings(),
			MigratedOutBytes:     n.MigratedOutBytes(),
			MigratedInTransfers:  n.MigratedInTransfers(),
			MigratedInReadings:   n.MigratedInReadings(),
		})
	case protocol.OpSubscribe:
		var sub cq.Subscription
		if err := protocol.DecodeJSON(req.Sub, &sub); err != nil {
			return nil, fmt.Errorf("fognode %s: subscribe: %w", n.cfg.Spec.ID, err)
		}
		if req.Remove {
			if !n.Unsubscribe(sub.ID) {
				return []byte("absent"), nil
			}
			return []byte("unsubscribed"), nil
		}
		if err := n.Subscribe(sub); err != nil {
			return nil, err
		}
		return []byte("subscribed"), nil
	case protocol.OpSubscriptions:
		subs := n.Subscriptions()
		resp := protocol.SubscriptionsResponse{NodeID: n.cfg.Spec.ID}
		for i := range subs {
			doc, err := protocol.EncodeJSON(subs[i])
			if err != nil {
				return nil, err
			}
			resp.Subs = append(resp.Subs, doc)
		}
		return protocol.EncodeJSON(resp)
	default:
		return nil, fmt.Errorf("fognode %s: unknown control op %q", n.cfg.Spec.ID, req.Op)
	}
}
