package fognode

// Unit coverage for the resilient-delivery path: the backoff/failover
// state machine (parent down -> retry -> sibling relay -> parent heal
// -> resume), frozen delivery sequences across retries, receive-path
// dedup, the relay handler, and the DroppedDuringOutage accounting.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
)

// scriptNet models the two paths out of a fog node during an
// asymmetric partition: the direct parent link (parentUp) and the
// sibling relay path (siblingUp — the sibling plus its own healthy
// parent link). Batches arriving at the parent by either path are
// deduped with a real ReplayFilter, mirroring the production receive
// path, and recorded.
type scriptNet struct {
	mu        sync.Mutex
	parentUp  bool
	siblingUp bool
	filter    *protocol.ReplayFilter
	delivered []*model.Batch // unique deliveries at the parent
	log       []string       // "<target>:<ok|fail>" per send
}

func newScriptNet() *scriptNet {
	return &scriptNet{filter: protocol.NewReplayFilter(0)}
}

func (s *scriptNet) Send(_ context.Context, msg transport.Message) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case msg.To == "fog2/d01" && msg.Kind == transport.KindBatch:
		if !s.parentUp {
			s.log = append(s.log, "parent:fail")
			return nil, errors.New("parent link down")
		}
		s.log = append(s.log, "parent:ok")
		return s.acceptLocked(msg.Payload)
	case msg.To == "fog1/d01-s02" && msg.Kind == transport.KindRelay:
		if !s.siblingUp {
			s.log = append(s.log, "sibling:fail")
			return nil, errors.New("sibling link down")
		}
		s.log = append(s.log, "sibling:ok")
		return s.acceptLocked(msg.Payload)
	default:
		return nil, &transport.RemoteError{Endpoint: msg.To, Msg: "unexpected message " + string(msg.Kind)}
	}
}

// acceptLocked is the parent's deduping receive path.
func (s *scriptNet) acceptLocked(payload []byte) ([]byte, error) {
	b, _, seq, err := protocol.DecodeBatchPayloadSeq(payload)
	if err != nil {
		return nil, err
	}
	if s.filter.Seen(b.NodeID, seq) {
		return []byte("ok"), nil
	}
	s.filter.Mark(b.NodeID, seq)
	s.delivered = append(s.delivered, b)
	return []byte("ok"), nil
}

func (s *scriptNet) takeLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.log
	s.log = nil
	return out
}

func (s *scriptNet) set(parentUp, siblingUp bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parentUp = parentUp
	s.siblingUp = siblingUp
}

func (s *scriptNet) deliveredReadings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, b := range s.delivered {
		total += len(b.Readings)
	}
	return total
}

func newFailoverNode(t *testing.T, net transport.Transport, clock sim.Clock) *Node {
	t.Helper()
	n, err := New(Config{
		Spec:          fog1Spec(),
		Clock:         clock,
		Transport:     net,
		Codec:         aggregate.CodecNone,
		Siblings:      []string{"fog1/d01-s02"},
		RetryBase:     time.Minute,
		RetryMax:      8 * time.Minute,
		FailoverAfter: 2,
		FailoverSeed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFailoverStateMachine walks the full lifecycle as a step table:
// parent down -> backoff defers attempts -> window expiry re-probes ->
// threshold crossed -> sibling relay carries the traffic -> parent
// heals -> direct delivery resumes.
func TestFailoverStateMachine(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	net := newScriptNet()
	n := newFailoverNode(t, net, clock)

	steps := []struct {
		name      string
		parentUp  bool
		siblingUp bool
		advance   time.Duration
		ingest    float64 // NaN-free sentinel: <0 means no ingest
		wantErr   bool
		wantState UpstreamState
		wantLog   []string
	}{
		{
			name: "first failure enters backoff", parentUp: false, siblingUp: true,
			ingest: 1, wantErr: true, wantState: UpstreamBackoff,
			wantLog: []string{"parent:fail"},
		},
		{
			name: "inside the window the flush defers without an attempt", parentUp: false, siblingUp: true,
			ingest: -1, wantErr: false, wantState: UpstreamBackoff,
			wantLog: nil,
		},
		{
			name: "window expiry re-probes, threshold crossed, relay carries the batch", parentUp: false, siblingUp: true,
			advance: time.Minute, ingest: -1, wantErr: false, wantState: UpstreamRelay,
			wantLog: []string{"parent:fail", "sibling:ok"},
		},
		{
			name: "relay mode sends straight to the sibling inside the window", parentUp: false, siblingUp: true,
			ingest: 2, wantErr: false, wantState: UpstreamRelay,
			wantLog: []string{"sibling:ok"},
		},
		{
			name: "healed parent resumes direct delivery", parentUp: true, siblingUp: true,
			advance: 8 * time.Minute, ingest: 3, wantErr: false, wantState: UpstreamHealthy,
			wantLog: []string{"parent:ok"},
		},
		{
			name: "healthy steady state", parentUp: true, siblingUp: false,
			ingest: 4, wantErr: false, wantState: UpstreamHealthy,
			wantLog: []string{"parent:ok"},
		},
	}
	total := 0
	for _, st := range steps {
		net.set(st.parentUp, st.siblingUp)
		clock.Advance(st.advance)
		if st.ingest >= 0 {
			b := batchOf(map[string]float64{"s": st.ingest}, clock.Now())
			if err := n.Ingest(b); err != nil {
				t.Fatalf("%s: ingest: %v", st.name, err)
			}
			total++
		}
		err := n.Flush(context.Background())
		if (err != nil) != st.wantErr {
			t.Fatalf("%s: flush err = %v, want error %v", st.name, err, st.wantErr)
		}
		if got := n.UpstreamState(); got != st.wantState {
			t.Errorf("%s: state = %v, want %v", st.name, got, st.wantState)
		}
		got := net.takeLog()
		if len(got) != len(st.wantLog) {
			t.Fatalf("%s: sends = %v, want %v", st.name, got, st.wantLog)
		}
		for i := range got {
			if got[i] != st.wantLog[i] {
				t.Fatalf("%s: sends = %v, want %v", st.name, got, st.wantLog)
			}
		}
	}
	if n.PendingBatches() != 0 {
		t.Errorf("pending after recovery = %d", n.PendingBatches())
	}
	if got := net.deliveredReadings(); got != total {
		t.Errorf("delivered %d unique readings, ingested %d", got, total)
	}
	if n.RelayedBatches() == 0 {
		t.Error("relay counter never incremented")
	}
}

// TestRetryKeepsDeliverySequence is the at-least-once core: a batch
// whose acknowledgement was lost is retried under the same sequence,
// and the deduping parent keeps exactly one copy.
func TestRetryKeepsDeliverySequence(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	simnet := transport.NewSimNetwork()
	var mu sync.Mutex
	filter := protocol.NewReplayFilter(0)
	var unique, raw int
	simnet.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		raw++
		if seq == 0 {
			return nil, errors.New("flush payload carries no delivery sequence")
		}
		if !filter.Seen(b.NodeID, seq) {
			filter.Mark(b.NodeID, seq)
			unique += len(b.Readings)
		}
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec: fog1Spec(), Clock: clock, Transport: simnet, Codec: aggregate.CodecNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Ingest(batchOf(map[string]float64{"a": 1}, t0)); err != nil {
		t.Fatal(err)
	}
	// The reply is lost: the parent ingests, the sender sees an error
	// and requeues.
	simnet.SetReplyLoss(n.ID(), "fog2/d01", 1)
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("expected reply-loss flush error")
	}
	if n.PendingBatches() != 1 {
		t.Fatalf("batch not requeued after reply loss")
	}
	simnet.SetReplyLoss(n.ID(), "fog2/d01", 0)
	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if raw != 2 {
		t.Errorf("parent saw %d deliveries, want 2 (original + retry)", raw)
	}
	if unique != 1 {
		t.Errorf("unique readings = %d, want 1: retry must reuse the delivery sequence", unique)
	}
}

// TestHandleBatchDedupsReplay covers the node's own receive path: the
// same sealed payload delivered twice ingests once.
func TestHandleBatchDedupsReplay(t *testing.T) {
	n := newTestNode(t, nil, false)
	child := batchOf(map[string]float64{"a": 20}, t0)
	child.NodeID = "fog1/child"
	var s protocol.Sealer
	payload, err := s.SealSeq(nil, child, aggregate.CodecNone, 9)
	if err != nil {
		t.Fatal(err)
	}
	msg := transport.Message{From: "fog1/child", Kind: transport.KindBatch, Payload: payload}
	for i := 0; i < 2; i++ {
		if _, err := n.Handle(context.Background(), msg); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	if got := n.Query("temperature", t0, t0.Add(time.Hour)); len(got) != 1 {
		t.Errorf("stored %d readings after a replay, want 1", len(got))
	}
	if n.DuplicateBatches() != 1 {
		t.Errorf("duplicates = %d, want 1", n.DuplicateBatches())
	}
	// A version-1 envelope (sequence 0) is never deduped.
	v1, err := protocol.EncodeBatchPayload(batchOf(map[string]float64{"b": 1}, t0.Add(time.Minute)), aggregate.CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := n.Handle(context.Background(), transport.Message{Kind: transport.KindBatch, Payload: v1}); err != nil {
			t.Fatal(err)
		}
	}
	if n.DuplicateBatches() != 1 {
		t.Errorf("sequence-0 deliveries were deduped (duplicates = %d)", n.DuplicateBatches())
	}
}

// TestHandleRelayForwardsToParent covers the receiving half of
// failover: a relayed payload is forwarded to the node's parent
// unchanged, and a parentless node refuses.
func TestHandleRelayForwardsToParent(t *testing.T) {
	simnet := transport.NewSimNetwork()
	var got transport.Message
	simnet.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		got = msg
		return []byte("ok"), nil
	}))
	n := newTestNode(t, simnet, false)
	var s protocol.Sealer
	payload, err := s.SealSeq(nil, batchOf(map[string]float64{"a": 2}, t0), aggregate.CodecNone, 5)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := n.Handle(context.Background(), transport.Message{
		From: "fog1/d01-s03", Kind: transport.KindRelay, Class: "energy", Payload: payload,
	})
	if err != nil || string(reply) != "ok" {
		t.Fatalf("relay = %q, %v", reply, err)
	}
	if got.Kind != transport.KindBatch || got.To != "fog2/d01" || got.From != n.ID() {
		t.Errorf("forwarded message = %+v", got)
	}
	if _, _, seq, err := protocol.DecodeBatchPayloadSeq(got.Payload); err != nil || seq != 5 {
		t.Errorf("forwarded payload seq = %d, %v: relay must not reframe", seq, err)
	}

	orphan, err := New(Config{
		Spec:  fog1Spec(),
		Clock: sim.NewVirtualClock(t0),
	})
	if err != nil {
		t.Fatal(err)
	}
	orphan.cfg.Spec.Parent = ""
	if _, err := orphan.Handle(context.Background(), transport.Message{Kind: transport.KindRelay, Payload: payload}); err == nil {
		t.Error("parentless relay must fail")
	}
}

// TestDroppedDuringOutageCounted is the satellite fix: readings shed
// from the retry queue while the parent is unreachable must increment
// the dedicated outage-drop counter, while bound shedding of fresh
// data with no outage must not.
func TestDroppedDuringOutageCounted(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	n, err := New(Config{
		Spec:               fog1Spec(),
		Clock:              clock,
		Codec:              aggregate.CodecNone,
		MaxPendingReadings: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No outage yet: shedding fresh pending data counts as shed only.
	for i := 0; i < 5; i++ {
		b := batchOf(map[string]float64{"s": float64(i)}, t0.Add(time.Duration(i)*time.Minute))
		if err := n.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if n.ShedReadings() != 2 || n.DroppedDuringOutage() != 0 {
		t.Fatalf("pre-outage shed=%d outage=%d, want 2/0", n.ShedReadings(), n.DroppedDuringOutage())
	}
	// A failed flush parks the 3 survivors on the retry queue (no
	// transport configured = hard outage)...
	if err := n.Flush(context.Background()); err == nil {
		t.Fatal("expected flush failure")
	}
	// ...and fresh arrivals push them over the bound: the outage-held
	// readings are shed AND counted as dropped-during-outage.
	for i := 5; i < 8; i++ {
		b := batchOf(map[string]float64{"s": float64(i)}, t0.Add(time.Duration(i)*time.Minute))
		if err := n.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.DroppedDuringOutage(); got != 3 {
		t.Errorf("DroppedDuringOutage = %d, want 3", got)
	}
	if got := n.ShedReadings(); got != 5 {
		t.Errorf("ShedReadings = %d, want 5 (2 fresh + 3 outage)", got)
	}
	if got := n.PendingReadings(); got != 3 {
		t.Errorf("PendingReadings = %d, want the bound (3)", got)
	}
}

// TestFailoverJitterDistinctPerNode: two nodes with IDENTICAL configs
// (same nonzero FailoverSeed — the deployment-wide default every node
// of a city shares) must draw distinct backoff jitter sequences, or
// siblings back off and re-probe a recovering parent in lockstep and
// storm it after an outage. The node's identity is mixed into the
// seed; the shared seed still keeps each node's own sequence
// deterministic for reproduction.
func TestFailoverJitterDistinctPerNode(t *testing.T) {
	mk := func(id string) *upstream {
		spec := fog1Spec()
		spec.ID = id
		return newUpstream(&Config{
			Spec:          spec,
			RetryBase:     time.Minute,
			RetryMax:      32 * time.Minute,
			FailoverAfter: 4,
			FailoverSeed:  12345, // identical on purpose
		})
	}
	draw := func(u *upstream) time.Duration {
		u.mu.Lock()
		defer u.mu.Unlock()
		u.fails = 3 // deep enough that the jitter range spans minutes
		return u.backoffLocked()
	}

	a, b := mk("fog1/d01-s01"), mk("fog1/d01-s02")
	const draws = 64
	distinct := false
	for i := 0; i < draws; i++ {
		if draw(a) != draw(b) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatalf("siblings with identical configs drew %d identical jitter values: lockstep backoff", draws)
	}

	// Reproducibility is preserved: the same identity and the same
	// FailoverSeed replay the same sequence.
	c, d := mk("fog1/d01-s01"), mk("fog1/d01-s01")
	for i := 0; i < draws; i++ {
		if dc, dd := draw(c), draw(d); dc != dd {
			t.Fatalf("draw %d: same node identity and seed diverged (%v vs %v)", i, dc, dd)
		}
	}
}
