package fognode

// Live shard migration: the data-movement half of the elastic
// rebalance plane.
//
// When the elastic topology reassigns a sensor type from this node to
// a sibling (a node joined or is leaving the district), the old owner
// hands the type's buffered delivery state — pending buffer, frozen-
// sequence retry queue, degrade-summary buffers, queued alert pushes,
// standing continuous-query subscriptions with their live window
// state, replay-filter marks — to the new owner over
// transport.KindMigrate, then forwards any
// still-arriving edge ingest of the type until the routing tier
// catches up. The handoff is exactly-once without a two-phase commit
// because everything moves as SEALED state verbatim:
//
//   - the moved batches keep their origin identity and delivery
//     sequences (the same SealSeq envelopes the upward path sends), so
//     the shared parent's per-origin replay filter keeps deduping them
//     no matter which sibling finally delivers;
//   - the target marks each chunk's (From, TransferSeq) in its replay
//     filter and journals the raw chunk before acknowledging, so a
//     retried chunk is acknowledged without re-absorbing and a target
//     crash recovers the absorbed state;
//   - the source journals the handoff (recMigrateStart before the
//     sends, recMigrateCommit after the last acknowledgement), so a
//     source crash at any boundary recovers to a state where at worst
//     BOTH siblings hold a copy — and both drain to the same deduping
//     parent, which keeps delivery exactly-once.
//
// State machine of one type's handoff, source side:
//
//	OWNED ──MigrateOut──▶ FROZEN   pending sealed, state out of maps,
//	                               recMigrateStart journaled
//	FROZEN ──chunks acked──▶ MOVED recMigrateCommit journaled; the
//	                               caller flips routing to the target
//	FROZEN ──send fails──▶ OWNED   unsent tail reinstalled on the
//	                               retry queues, sequences kept
//
// and target side:
//
//	chunk ──dedup (From,TransferSeq)──▶ ack (already absorbed)
//	chunk ──recMigrateIn──▶ retry queue (entries verbatim) ──▶ next
//	        flush delivers under the ORIGINAL origins and sequences

import (
	"context"
	"fmt"
	"sort"

	"f2c/internal/cq"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/transport"
)

// SetRoute redirects future edge ingest of a sensor type to its new
// owner: the type was migrated away and this node no longer delivers
// it upward. An empty or self target clears the route.
func (n *Node) SetRoute(typ, target string) {
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	if target == "" || target == n.cfg.Spec.ID {
		delete(n.routes, typ)
		return
	}
	n.routes[typ] = target
}

// ClearRoute restores local ownership of a sensor type's ingest.
func (n *Node) ClearRoute(typ string) {
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	delete(n.routes, typ)
}

// Route returns the node a type's edge ingest is being forwarded to,
// or "" when this node owns the type locally.
func (n *Node) Route(typ string) string {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	return n.routes[typ]
}

// Routes returns a copy of the active forwarding table.
func (n *Node) Routes() map[string]string {
	n.routeMu.RLock()
	defer n.routeMu.RUnlock()
	out := make(map[string]string, len(n.routes))
	for typ, target := range n.routes {
		out[typ] = target
	}
	return out
}

// sortBatchReadings restores time order (ties broken by sensor then
// value) so sealed payloads — and their compressed sizes — are
// deterministic for a given set of readings regardless of arrival
// interleaving.
func sortBatchReadings(b *model.Batch) {
	sort.SliceStable(b.Readings, func(i, j int) bool {
		ri, rj := &b.Readings[i], &b.Readings[j]
		if !ri.Time.Equal(rj.Time) {
			return ri.Time.Before(rj.Time)
		}
		if ri.SensorID != rj.SensorID {
			return ri.SensorID < rj.SensorID
		}
		return ri.Value < rj.Value
	})
}

// MigrateOut moves one sensor type's buffered delivery state to a new
// owner. The pending buffer is frozen under a fresh delivery sequence
// (journaled like any seal), then everything the type has queued —
// retry batches, summary pushes, the degrade buffer — leaves the
// shard maps and travels to the target in bounded KindMigrate chunks,
// along with a snapshot of this node's replay-filter marks so the
// target inherits the dedup horizon. On a send failure the unsent
// tail is reinstalled with its sequences intact and the error is
// returned; the caller may retry — a chunk the target already
// absorbed is deduped there, and even a chunk absorbed under a lost
// acknowledgement only yields a second copy that the shared parent
// dedupes by its frozen (origin, seq).
//
// MigrateOut does not flip routing: the caller (the elastic topology
// layer) sets the route on this node and its ring before or after the
// handoff. In-flight flushes of the type may hold batches outside the
// shard maps; on failure those requeue here and drain upward under
// this node's identity, which the parent-side dedup absorbs.
func (n *Node) MigrateOut(ctx context.Context, typ, target string) error {
	me := n.cfg.Spec.ID
	if typ == "" || target == "" || target == me {
		return fmt.Errorf("fognode %s: migrate %q to %q: invalid handoff", me, typ, target)
	}
	if n.cfg.Transport == nil {
		return fmt.Errorf("fognode %s: migrate: no transport configured", me)
	}
	n.flightMu.RLock()
	defer n.flightMu.RUnlock()

	sh := n.shardFor(typ)
	sh.mu.Lock()
	if p, ok := sh.pending[typ]; ok {
		if len(p.Readings) > 0 {
			sb := sealedBatch{b: p, seq: n.seq.Add(1)}
			if n.journal != nil {
				// Best-effort, like any seal: a lost record degrades
				// toward re-delivery under a fresh sequence.
				_ = n.journal.appendSeal(typ, sb.seq, len(p.Readings))
			}
			sh.retry[typ] = append(sh.retry[typ], sb)
		}
		delete(sh.pending, typ)
	}
	entries := sh.retry[typ]
	delete(sh.retry, typ)
	sums := sh.sumRetry[typ]
	delete(sh.sumRetry, typ)
	if buf, ok := sh.degraded[typ]; ok {
		if len(buf.windows) > 0 {
			sums = append(sums, n.sealSummaryLocked(typ, buf))
		}
		delete(sh.degraded, typ)
	}
	alerts := sh.alerts[typ]
	delete(sh.alerts, typ)
	sh.mu.Unlock()
	// Standing subscriptions leave with the type, live window state
	// included, so a half-built window keeps accumulating on the new
	// owner instead of silently losing its partial aggregate.
	subs := n.cqe.Extract(typ)

	if err := n.sendTransfers(ctx, typ, target, entries, sums, alerts, subs); err != nil {
		return fmt.Errorf("fognode %s: migrate %s to %s: %w", me, typ, target, err)
	}
	return nil
}

// sendTransfers seals and ships one type's extracted state in chunks
// bounded by protocol.MaxMigrateWireSize. At least one chunk is always
// sent — an empty handoff still carries the replay-mark snapshot and
// acts as the ownership handshake that clears the target's stale
// route. On failure the unsent tail (the failed chunk included) is
// reinstalled on the retry queues; the continuous-query state (queued
// alert pushes and subscription snapshots, which ride only the first
// chunk) is reinstalled unless that chunk was already acknowledged.
func (n *Node) sendTransfers(ctx context.Context, typ, target string, entries []sealedBatch, sums []sealedSummary, alerts []sealedAlert, subs []cq.SubSnapshot) error {
	me := n.cfg.Spec.ID
	now := n.cfg.Clock.Now()

	reinstallCQ := func() {
		for i := range subs {
			_ = n.cqe.Install(subs[i])
		}
		n.requeueAlerts(typ, alerts)
	}

	// Seal every entry up front; the encoded sizes drive the chunking.
	sc := n.getScratch()
	payloads := make([][]byte, len(entries))
	for i := range entries {
		b := entries[i].b
		sortBatchReadings(b)
		b.Collected = now
		payload, err := sc.sealer.SealSeq(nil, b, n.cfg.Codec, entries[i].seq)
		if err != nil {
			n.putScratch(sc)
			n.requeue(entries)
			n.requeueSummaries(typ, sums)
			reinstallCQ()
			return fmt.Errorf("seal entry: %w", err)
		}
		payloads[i] = payload
	}
	n.putScratch(sc)

	docs := make([][]byte, len(sums))
	for i := range sums {
		doc, err := protocol.EncodeJSON(sums[i].push)
		if err != nil {
			n.requeue(entries)
			n.requeueSummaries(typ, sums)
			reinstallCQ()
			return fmt.Errorf("encode summary: %w", err)
		}
		docs[i] = doc
	}

	subDocs := make([][]byte, len(subs))
	alertWires := make([]protocol.MigrateAlert, len(alerts))
	cqCost := 0
	{
		var err error
		for i := range subs {
			if subDocs[i], err = cq.EncodeSubSnapshot(&subs[i]); err != nil {
				break
			}
			cqCost += len(subDocs[i]) + 10
		}
		for i := range alerts {
			if err != nil {
				break
			}
			var wire []byte
			if wire, err = protocol.EncodeAlertPush(&alerts[i].push); err != nil {
				break
			}
			alertWires[i] = protocol.MigrateAlert{Seq: alerts[i].seq, Payload: wire}
			cqCost += len(wire) + 19
		}
		if err != nil {
			n.requeue(entries)
			n.requeueSummaries(typ, sums)
			reinstallCQ()
			return fmt.Errorf("encode cq state: %w", err)
		}
	}

	// Greedy chunk assignment by encoded size. Chunk boundaries are
	// (entryEnd, sumEnd) watermarks: a chunk covers entries[prevE:e]
	// and sums[prevS:s], entries first. The first chunk additionally
	// carries the replay-mark snapshot and the continuous-query state.
	marks := n.replay.Dump()
	marksCost := 16 + cqCost
	for origin, seqs := range marks {
		marksCost += len(origin) + 10 + 9*len(seqs)
	}
	budget := protocol.MaxMigrateWireSize() - 512
	type watermark struct{ e, s int }
	var chunks []watermark
	size := marksCost // first chunk starts with the marks
	e, s := 0, 0
	for e < len(entries) || s < len(sums) {
		var cost int
		if e < len(entries) {
			cost = len(payloads[e]) + 16
		} else {
			cost = len(docs[s]) + 16
		}
		// Rotate a non-empty chunk when the next item would overflow
		// it; an item that overflows an empty chunk is taken anyway
		// (progress) and left for the encoder's size check to reject.
		if size+cost > budget && size > 0 {
			chunks = append(chunks, watermark{e, s})
			size = 0
			continue
		}
		size += cost
		if e < len(entries) {
			e++
		} else {
			s++
		}
	}
	chunks = append(chunks, watermark{len(entries), len(sums)})

	// Reserve every chunk's transfer sequence up front and journal the
	// advanced counter (recMigrateStart) before the first send. The
	// target marks each absorbed (From, TransferSeq) in its replay
	// filter, so a source crash must never recover to a counter that
	// mints those sequences again: a reused sequence would be silently
	// deduped at the target and its readings lost.
	seqHigh := n.seq.Add(uint64(len(chunks)))
	seqLow := seqHigh - uint64(len(chunks)) + 1
	if n.journal != nil {
		_ = n.journal.appendMigrateStart(typ, target, seqHigh)
	}

	var movedSeqs []uint64
	movedCQ := false
	prev := watermark{0, 0}
	for ci, wm := range chunks {
		t := &protocol.MigrateTransfer{
			TypeName:    typ,
			From:        me,
			To:          target,
			TransferSeq: seqLow + uint64(ci),
		}
		if ci == 0 {
			t.Marks = marks
			t.Subs = subDocs
			t.Alerts = alertWires
		}
		readings := int64(0)
		for i := prev.e; i < wm.e; i++ {
			t.Entries = append(t.Entries, protocol.MigrateEntry{Seq: entries[i].seq, Payload: payloads[i]})
			readings += int64(len(entries[i].b.Readings))
		}
		for i := prev.s; i < wm.s; i++ {
			t.Summaries = append(t.Summaries, protocol.MigrateSummary{Seq: sums[i].seq, Push: sums[i].push})
		}
		payload, err := protocol.EncodeMigrateTransfer(t)
		if err == nil {
			msg := transport.Message{
				From:    me,
				To:      target,
				Kind:    transport.KindMigrate,
				Class:   transport.ClassMigrate,
				Payload: payload,
			}
			_, err = n.cfg.Transport.Send(ctx, msg)
			if err == nil {
				n.migOutTransfers.Inc()
				n.migOutReads.Add(readings)
				n.migOutBytes.Add(msg.WireSize())
				for i := prev.e; i < wm.e; i++ {
					movedSeqs = append(movedSeqs, entries[i].seq)
				}
				if ci == 0 {
					// The continuous-query state rode this chunk and now
					// belongs to the target: journal the handoff so a
					// recovered source neither re-evaluates the moved
					// subscriptions nor resurrects the moved pushes.
					movedCQ = true
					if n.journal != nil {
						for i := range subs {
							_ = n.journal.appendUnsubscribe(subs[i].Sub.ID)
						}
						for i := range alerts {
							_ = n.journal.appendAlertCommit(typ, alerts[i].push.Origin, alerts[i].seq)
						}
					}
				}
				prev = wm
				continue
			}
		}
		// Reinstall everything from the failed chunk on, sequences
		// frozen; a retried MigrateOut re-chunks under fresh transfer
		// sequences, and any chunk the target absorbed under a lost
		// acknowledgement is deduped downstream by its frozen origins.
		n.requeue(entries[prev.e:])
		n.requeueSummaries(typ, sums[prev.s:])
		if !movedCQ {
			reinstallCQ()
		}
		if n.journal != nil && len(movedSeqs) > 0 {
			_ = n.journal.appendMigrateCommit(typ, movedSeqs)
		}
		return err
	}
	if n.journal != nil && len(movedSeqs) > 0 {
		// Acknowledged by the new owner: the moved batches are no
		// longer this node's responsibility and recovery must not
		// resurrect them here.
		_ = n.journal.appendMigrateCommit(typ, movedSeqs)
	}
	return nil
}

// handleMigrate absorbs one handoff chunk: the entries enter the
// retry queue VERBATIM — origin identities and frozen sequences
// preserved, no re-ingest — so this node's next flush delivers them
// exactly as the old owner would have, and every replay filter
// downstream keeps working. The raw chunk is journaled (recMigrateIn)
// before any state change, the chunk's own (From, TransferSeq) mark
// makes retries idempotent, and the moved replay marks merge into
// this node's filter so it inherits the source's dedup horizon.
func (n *Node) handleMigrate(msg transport.Message) ([]byte, error) {
	me := n.cfg.Spec.ID
	t, err := protocol.DecodeMigrateTransfer(msg.Payload)
	if err != nil {
		return nil, fmt.Errorf("fognode %s: migrate: %w", me, err)
	}
	if t.To != me {
		return nil, fmt.Errorf("fognode %s: migrate chunk addressed to %q", me, t.To)
	}
	if n.replay.Seen(t.From, t.TransferSeq) {
		n.dupBatches.Inc()
		return []byte("ok"), nil
	}
	ents := make([]sealedBatch, 0, len(t.Entries))
	readings := int64(0)
	for i, e := range t.Entries {
		b, _, seq, err := protocol.DecodeBatchPayloadSeq(e.Payload)
		if err != nil {
			return nil, fmt.Errorf("fognode %s: migrate entry %d: %w", me, i, err)
		}
		if seq != e.Seq {
			return nil, fmt.Errorf("fognode %s: migrate entry %d: envelope seq %d != entry seq %d", me, i, seq, e.Seq)
		}
		if b.TypeName != t.TypeName {
			return nil, fmt.Errorf("fognode %s: migrate entry %d: type %q in a %q transfer", me, i, b.TypeName, t.TypeName)
		}
		ents = append(ents, sealedBatch{b: b, seq: seq})
		readings += int64(len(b.Readings))
	}
	// Decode the continuous-query sections up front too: a malformed
	// chunk is rejected whole, before any state or journal change.
	subs := make([]*cq.SubSnapshot, 0, len(t.Subs))
	for i := range t.Subs {
		snap, err := cq.DecodeSubSnapshot(t.Subs[i])
		if err != nil {
			return nil, fmt.Errorf("fognode %s: migrate subscription %d: %w", me, i, err)
		}
		subs = append(subs, snap)
	}
	pushes := make([]sealedAlert, 0, len(t.Alerts))
	for i := range t.Alerts {
		p, err := protocol.DecodeAlertPush(t.Alerts[i].Payload)
		if err != nil {
			return nil, fmt.Errorf("fognode %s: migrate alert %d: %w", me, i, err)
		}
		pushes = append(pushes, sealedAlert{push: *p, seq: t.Alerts[i].Seq})
	}

	sh := n.shardFor(t.TypeName)
	sh.mu.Lock()
	if n.journal != nil {
		// The journal append is the acceptance gate, exactly like a
		// batch ingest: if the chunk cannot be made durable it is
		// rejected and the source keeps (or reinstalls) the state.
		if err := n.journal.appendMigrateIn(msg.Payload); err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("fognode %s: migrate: %w", me, err)
		}
	}
	sh.retry[t.TypeName] = append(sh.retry[t.TypeName], ents...)
	for _, s := range t.Summaries {
		sh.sumRetry[t.TypeName] = append(sh.sumRetry[t.TypeName], sealedSummary{push: s.Push, seq: s.Seq})
	}
	// Absorbed alert pushes queue VERBATIM, original identities
	// preserved, exactly like the batches above; recMigrateIn's raw
	// payload covers them on replay.
	if len(pushes) > 0 {
		sh.alerts[t.TypeName] = append(sh.alerts[t.TypeName], pushes...)
		n.boundAlertsLocked(sh, t.TypeName)
	}
	n.boundTypeLocked(sh, t.TypeName)
	sh.mu.Unlock()

	// Moved subscriptions install with their live window state; Install
	// merges if this node already watches the type with the same
	// definition (its own partial windows survive the merge).
	for _, snap := range subs {
		_ = n.cqe.Install(*snap)
	}

	for origin, seqs := range t.Marks {
		for _, seq := range seqs {
			n.replay.Mark(origin, seq)
		}
	}
	// Mark the chunk itself only after the state landed: marking
	// earlier would blackhole the source's retry of a failed absorb.
	n.replay.Mark(t.From, t.TransferSeq)
	// Receiving a chunk is the ownership handshake: this node owns the
	// type now, so a stale forwarding route must not bounce it back.
	n.ClearRoute(t.TypeName)
	n.migInTransfers.Inc()
	n.migInReads.Add(readings)
	return []byte("ok"), nil
}

// ingestRouted handles an edge ingest of a type whose ownership
// migrated away: the batch is journaled and merged into the pending
// buffer like any acceptance, immediately frozen under a fresh
// sequence (the same transitions recovery replays), and forwarded to
// the new owner as a single-entry transfer whose TransferSeq is the
// batch's own sequence. If the forward fails the sealed batch parks
// on the local retry queue under that same frozen sequence — whether
// it later drains upward from here, is re-forwarded by a MigrateOut,
// or was absorbed by the target under a lost acknowledgement, the
// shared parent sees one (origin, seq) and keeps it exactly once.
func (n *Node) ingestRouted(b *model.Batch, target string) error {
	me := n.cfg.Spec.ID
	sh := n.shardFor(b.TypeName)
	sh.mu.Lock()
	if n.journal != nil {
		if err := n.journal.appendBatch(me, b, "", 0); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("fognode %s: ingest: %w", me, err)
		}
	}
	cur, ok := sh.pending[b.TypeName]
	if !ok {
		cur = b.Clone()
		cur.NodeID = me
	} else {
		cur.Readings = append(cur.Readings, b.Readings...)
		delete(sh.pending, b.TypeName)
	}
	sb := sealedBatch{b: cur, seq: n.seq.Add(1)}
	if n.journal != nil {
		// The seal covers the whole (merged) buffer, so replay's
		// freeze matches this transition exactly.
		_ = n.journal.appendSeal(b.TypeName, sb.seq, len(cur.Readings))
	}
	sh.mu.Unlock()

	if n.cfg.Transport != nil {
		if err := n.forwardSealed(sb, target); err == nil {
			if n.journal != nil {
				_ = n.journal.appendCommit(b.TypeName, sb.seq)
			}
			return nil
		}
	}
	// Forward failed: keep the frozen batch; it drains upward from
	// here or moves with the next MigrateOut.
	n.requeue([]sealedBatch{sb})
	return nil
}

// forwardSealed ships one sealed batch to a type's new owner as a
// single-entry migration transfer.
func (n *Node) forwardSealed(sb sealedBatch, target string) error {
	me := n.cfg.Spec.ID
	sc := n.getScratch()
	payload, err := sc.sealer.SealSeq(sc.payload[:0], sb.b, n.cfg.Codec, sb.seq)
	if err != nil {
		n.putScratch(sc)
		return err
	}
	sc.payload = payload
	t := &protocol.MigrateTransfer{
		TypeName:    sb.b.TypeName,
		From:        me,
		To:          target,
		TransferSeq: sb.seq,
		Entries:     []protocol.MigrateEntry{{Seq: sb.seq, Payload: payload}},
	}
	wire, err := protocol.EncodeMigrateTransfer(t)
	if err != nil {
		n.putScratch(sc)
		return err
	}
	msg := transport.Message{
		From:    me,
		To:      target,
		Kind:    transport.KindMigrate,
		Class:   transport.ClassMigrate,
		Payload: wire,
	}
	_, err = n.cfg.Transport.Send(context.Background(), msg)
	n.putScratch(sc)
	if err != nil {
		return err
	}
	n.migOutTransfers.Inc()
	n.migOutReads.Add(int64(len(sb.b.Readings)))
	n.migOutBytes.Add(msg.WireSize())
	return nil
}

// MigratedOutTransfers reports how many handoff chunks this node
// shipped to new owners (forwarded edge ingests included).
func (n *Node) MigratedOutTransfers() int64 { return n.migOutTransfers.Value() }

// MigratedOutReadings reports how many readings left this node inside
// migration transfers.
func (n *Node) MigratedOutReadings() int64 { return n.migOutReads.Value() }

// MigratedOutBytes reports the wire bytes of every migration transfer
// this node shipped — the quantity the rebalance-traffic bound is
// asserted against.
func (n *Node) MigratedOutBytes() int64 { return n.migOutBytes.Value() }

// MigratedInTransfers reports how many handoff chunks this node
// absorbed as a new owner.
func (n *Node) MigratedInTransfers() int64 { return n.migInTransfers.Value() }

// MigratedInReadings reports how many readings arrived in absorbed
// migration transfers.
func (n *Node) MigratedInReadings() int64 { return n.migInReads.Value() }
