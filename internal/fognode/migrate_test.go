package fognode

// Live shard migration tests: the handoff must move every piece of a
// type's delivery state, keep delivery exactly-once through retries,
// lost acknowledgements, and crashes on either side, and leave exactly
// one owner after recovery.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/protocol"
	"f2c/internal/sim"
	"f2c/internal/transport"
	"f2c/internal/wal"
)

// migrateNet routes messages between a set of live nodes and a
// deduping parent endpoint, with a scriptable failure mode for
// KindMigrate traffic.
type migrateNet struct {
	mu       sync.Mutex
	parentID string
	parent   *dedupParent
	nodes    map[string]transport.Handler
	// migrateMode: "up" delivers, "fail" refuses before the handler
	// runs, "acklost" runs the handler then loses the reply.
	migrateMode string
}

func newMigrateNet(parentID string) *migrateNet {
	return &migrateNet{
		parentID:    parentID,
		parent:      newDedupParent(),
		nodes:       make(map[string]transport.Handler),
		migrateMode: "up",
	}
}

func (m *migrateNet) setMigrate(mode string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.migrateMode = mode
}

func (m *migrateNet) attach(id string, h transport.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[id] = h
}

func (m *migrateNet) Send(ctx context.Context, msg transport.Message) ([]byte, error) {
	if msg.To == m.parentID {
		return m.parent.Send(ctx, msg)
	}
	m.mu.Lock()
	h := m.nodes[msg.To]
	mode := m.migrateMode
	m.mu.Unlock()
	if h == nil {
		return nil, transport.ErrUnknownEndpoint
	}
	if msg.Kind == transport.KindMigrate && mode == "fail" {
		return nil, errors.New("migrate link down")
	}
	reply, err := h.Handle(ctx, msg)
	if err != nil {
		return nil, err
	}
	if msg.Kind == transport.KindMigrate && mode == "acklost" {
		return nil, errors.New("migrate ack lost after processing")
	}
	return reply, nil
}

func newMigrateNode(t testing.TB, net *migrateNet, id, dir string) *Node {
	t.Helper()
	spec := fog1Spec()
	spec.ID = id
	cfg := Config{
		Spec:      spec,
		Clock:     sim.NewVirtualClock(t0),
		Transport: net,
		Codec:     aggregate.CodecNone,
	}
	if dir != "" {
		cfg.Durability = &wal.Config{Dir: dir, SnapshotEvery: -1}
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.attach(id, n)
	return n
}

// TestMigrateOutMovesAllState: pending buffer, frozen retry queue and
// degrade buffer all leave the source and reach the target, which
// delivers them upward under their ORIGINAL identities, exactly once.
func TestMigrateOutMovesAllState(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	// A frozen retry batch: flush against a down parent.
	_ = src.Ingest(typedBatch("traffic", t0, 1, 2, 3))
	net.parent.set("down")
	_ = src.Flush(ctx)
	// Plus a fresh pending buffer.
	_ = src.Ingest(typedBatch("traffic", t0.Add(time.Second), 4, 5))

	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		t.Fatal(err)
	}
	if got := src.PendingBatches(); got != 0 {
		t.Fatalf("source still holds %d delivery units after handoff", got)
	}
	if got := dst.PendingReadings(); got != 5 {
		t.Fatalf("target absorbed %d readings, want 5", got)
	}
	if src.MigratedOutReadings() != 5 || dst.MigratedInReadings() != 5 {
		t.Fatalf("migration counters out=%d in=%d, want 5/5",
			src.MigratedOutReadings(), dst.MigratedInReadings())
	}

	net.parent.set("up")
	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	counts := net.parent.counts()
	if len(counts) != 5 {
		t.Fatalf("parent preserved %d distinct readings, want 5", len(counts))
	}
	for v, c := range counts {
		if c != 1 {
			t.Errorf("reading %v preserved %d times, want exactly once", v, c)
		}
	}
}

// TestMigrateRetryAfterLostAckIsExactlyOnce: the hard case — the
// target absorbs a chunk but the acknowledgement is lost, the source
// reinstalls and retries, the target absorbs a second copy. Both
// copies carry the same frozen (origin, seq), so the shared parent
// keeps each reading exactly once.
func TestMigrateRetryAfterLostAckIsExactlyOnce(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	_ = src.Ingest(typedBatch("traffic", t0, 1, 2, 3))

	net.setMigrate("acklost")
	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err == nil {
		t.Fatal("handoff with lost ack reported success")
	}
	if got := src.PendingReadings(); got != 3 {
		t.Fatalf("source reinstalled %d readings after failed handoff, want 3", got)
	}

	net.setMigrate("up")
	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		t.Fatal(err)
	}
	// The target now holds two copies of the sealed batch (absorbed
	// under two different transfer sequences) — the parent dedupes.
	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	counts := net.parent.counts()
	if len(counts) != 3 {
		t.Fatalf("parent preserved %d distinct readings, want 3", len(counts))
	}
	for v, c := range counts {
		if c != 1 {
			t.Errorf("reading %v preserved %d times, want exactly once", v, c)
		}
	}
}

// TestMigrateChunksBounded: a handoff larger than one transfer splits
// into multiple bounded chunks, every chunk under the wire limit, and
// nothing is lost across the split.
func TestMigrateChunksBounded(t *testing.T) {
	old := protocol.MaxBatchWireSize()
	protocol.SetMaxBatchWireSize(8 << 10)
	defer protocol.SetMaxBatchWireSize(old)

	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	// Freeze many retry batches so the handoff must chunk: each failed
	// flush parks one sealed batch of ~100 readings (~3 KiB sealed).
	net.parent.set("down")
	total := 0
	for i := 0; i < 24; i++ {
		vals := make([]float64, 100)
		for j := range vals {
			total++
			vals[j] = float64(total)
		}
		_ = src.Ingest(typedBatch("traffic", t0.Add(time.Duration(i)*time.Second), vals...))
		_ = src.Flush(ctx)
	}

	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		t.Fatal(err)
	}
	if got := src.MigratedOutTransfers(); got < 2 {
		t.Fatalf("handoff used %d transfers, want >= 2 (chunking)", got)
	}
	if got := dst.PendingReadings(); got != total {
		t.Fatalf("target absorbed %d readings, want %d", got, total)
	}

	net.parent.set("up")
	for round := 0; round < 4 && dst.PendingBatches() > 0; round++ {
		if err := dst.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	counts := net.parent.counts()
	if len(counts) != total {
		t.Fatalf("parent preserved %d distinct readings, want %d", len(counts), total)
	}
}

// TestIngestForwardsRoutedTypes: once a route is set, edge ingest of
// the moved type is forwarded to the new owner as a single-entry
// transfer and delivered upward under the SOURCE's identity — the
// source keeps serving local reads but no longer queues upward state.
func TestIngestForwardsRoutedTypes(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	src.SetRoute("traffic", dst.ID())
	if err := src.Ingest(typedBatch("traffic", t0, 7, 8)); err != nil {
		t.Fatal(err)
	}
	if got := src.PendingBatches(); got != 0 {
		t.Fatalf("source queued %d delivery units for a routed type", got)
	}
	if got := dst.PendingReadings(); got != 2 {
		t.Fatalf("target holds %d forwarded readings, want 2", got)
	}
	// Local real-time reads still work at the ingesting section.
	if r, ok := src.Latest("traffic/0"); !ok || r.Value != 7 {
		t.Fatalf("source Latest = %+v ok=%v, want 7", r, ok)
	}

	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	counts := net.parent.counts()
	if len(counts) != 2 {
		t.Fatalf("parent preserved %d readings, want 2", len(counts))
	}

	// An unrouted type keeps the local path.
	src.ClearRoute("traffic")
	_ = src.Ingest(typedBatch("traffic", t0.Add(time.Minute), 9))
	if got := src.PendingBatches(); got != 1 {
		t.Fatalf("source queued %d delivery units after ClearRoute, want 1", got)
	}
}

// TestIngestRoutedFallsBackWhenTargetDown: a forward that cannot
// reach the new owner parks the sealed batch locally under its frozen
// sequence; it drains upward from the source and stays exactly-once
// even if the target absorbed a copy before the link died.
func TestIngestRoutedFallsBackWhenTargetDown(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	src.SetRoute("traffic", dst.ID())

	net.setMigrate("fail")
	if err := src.Ingest(typedBatch("traffic", t0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := src.PendingReadings(); got != 2 {
		t.Fatalf("source parked %d readings after failed forward, want 2", got)
	}

	// The ack-lost shape: target absorbed, source parked a copy too.
	net.setMigrate("acklost")
	if err := src.Ingest(typedBatch("traffic", t0.Add(time.Second), 3)); err != nil {
		t.Fatal(err)
	}
	if got := dst.PendingReadings(); got != 1 {
		t.Fatalf("target absorbed %d readings under lost ack, want 1", got)
	}

	net.setMigrate("up")
	if err := src.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	counts := net.parent.counts()
	if len(counts) != 3 {
		t.Fatalf("parent preserved %d distinct readings, want 3", len(counts))
	}
	for v, c := range counts {
		if c != 1 {
			t.Errorf("reading %v preserved %d times, want exactly once", v, c)
		}
	}
}

// TestMigrateMovesReplayMarks: the target inherits the source's dedup
// horizon, so a child's retry of a batch the SOURCE already accepted
// is recognized by the TARGET after the handoff.
func TestMigrateMovesReplayMarks(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", "")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	child := typedBatch("traffic", t0, 10, 11)
	child.NodeID = "edge/e1"
	payload, err := (&protocol.Sealer{}).SealSeq(nil, child, aggregate.CodecNone, 42)
	if err != nil {
		t.Fatal(err)
	}
	msg := transport.Message{From: "edge/e1", To: src.ID(), Kind: transport.KindBatch, Payload: payload}
	if _, err := src.Handle(ctx, msg); err != nil {
		t.Fatal(err)
	}

	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		t.Fatal(err)
	}

	// The child retries the same delivery against the new owner.
	msg.To = dst.ID()
	if _, err := dst.Handle(ctx, msg); err != nil {
		t.Fatal(err)
	}
	if got := dst.DuplicateBatches(); got != 1 {
		t.Fatalf("target suppressed %d duplicates, want 1 (marks not inherited?)", got)
	}
	if err := dst.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	counts := net.parent.counts()
	for v, c := range counts {
		if c != 1 {
			t.Errorf("reading %v preserved %d times, want exactly once", v, c)
		}
	}
	if len(counts) != 2 {
		t.Fatalf("parent preserved %d readings, want 2", len(counts))
	}
}

// TestMigrateRejectsBadChunks: malformed, misaddressed and
// type-mismatched chunks are refused without state changes.
func TestMigrateRejectsBadChunks(t *testing.T) {
	net := newMigrateNet("fog2/d01")
	dst := newMigrateNode(t, net, "fog1/d01-s02", "")
	ctx := context.Background()

	send := func(payload []byte) error {
		_, err := dst.Handle(ctx, transport.Message{
			From: "fog1/d01-s01", To: dst.ID(), Kind: transport.KindMigrate, Payload: payload,
		})
		return err
	}
	if err := send([]byte("garbage")); err == nil {
		t.Error("garbage chunk accepted")
	}

	mk := func(mutate func(*protocol.MigrateTransfer)) []byte {
		b := typedBatch("traffic", t0, 1)
		b.NodeID = "fog1/d01-s01"
		payload, err := (&protocol.Sealer{}).SealSeq(nil, b, aggregate.CodecNone, 5)
		if err != nil {
			t.Fatal(err)
		}
		tr := &protocol.MigrateTransfer{
			TypeName: "traffic", From: "fog1/d01-s01", To: dst.ID(), TransferSeq: 9,
			Entries: []protocol.MigrateEntry{{Seq: 5, Payload: payload}},
		}
		mutate(tr)
		wire, err := protocol.EncodeMigrateTransfer(tr)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}

	if err := send(mk(func(tr *protocol.MigrateTransfer) { tr.To = "fog1/d01-s09" })); err == nil ||
		!strings.Contains(err.Error(), "addressed to") {
		t.Errorf("misaddressed chunk: err = %v", err)
	}
	if err := send(mk(func(tr *protocol.MigrateTransfer) { tr.Entries[0].Seq = 6 })); err == nil ||
		!strings.Contains(err.Error(), "envelope seq") {
		t.Errorf("seq-mismatched chunk: err = %v", err)
	}
	if err := send(mk(func(tr *protocol.MigrateTransfer) { tr.TypeName = "noise_level" })); err == nil ||
		!strings.Contains(err.Error(), "transfer") {
		t.Errorf("type-mismatched chunk: err = %v", err)
	}
	if got := dst.PendingReadings(); got != 0 {
		t.Fatalf("rejected chunks left %d readings behind", got)
	}
}

// TestMigrationRecoverySeeded is the crash-safety property: random
// interleavings of ingest, flush, handoff (against a flaky migrate
// link and a flaky parent), crashes of EITHER side at WAL-record
// boundaries, and checkpoints must always converge — after healing
// and draining — to every accepted reading preserved exactly once at
// the parent, no phantoms, and a single owner (the source holds
// nothing for a type whose handoff committed). A failure message
// carries the reproducing seed.
func TestMigrationRecoverySeeded(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			migrationRecoveryProperty(t, seed)
		})
	}
}

func migrationRecoveryProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	srcDir, dstDir := t.TempDir(), t.TempDir()
	net := newMigrateNet("fog2/d01")
	src := newMigrateNode(t, net, "fog1/d01-s01", srcDir)
	dst := newMigrateNode(t, net, "fog1/d01-s02", dstDir)
	ctx := context.Background()

	accepted := make(map[float64]bool)
	nextVal := 0.0
	at := t0
	failf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("migration property (rerun with seed %d): %s", seed, fmt.Sprintf(format, args...))
	}

	for op := 0; op < 140; op++ {
		at = at.Add(time.Second)
		switch k := rng.Intn(12); {
		case k < 5: // edge ingest at the source (routed or not)
			vals := make([]float64, 1+rng.Intn(5))
			for i := range vals {
				nextVal++
				vals[i] = nextVal
			}
			if err := src.Ingest(typedBatch("traffic", at, vals...)); err != nil {
				failf("op %d ingest: %v", op, err)
			}
			for _, v := range vals {
				accepted[v] = true
			}
		case k < 7: // flush either side against a parent in a random mood
			net.parent.set([]string{"up", "down", "acklost"}[rng.Intn(3)])
			_ = src.Flush(ctx)
			_ = dst.Flush(ctx)
		case k < 9: // handoff over a flaky migrate link
			net.setMigrate([]string{"up", "up", "fail", "acklost"}[rng.Intn(4)])
			err := src.MigrateOut(ctx, "traffic", dst.ID())
			net.setMigrate("up")
			if err == nil {
				src.SetRoute("traffic", dst.ID())
			}
		case k < 10: // crash + recover the source at a WAL-record boundary
			routes := src.Routes()
			src = newMigrateNode(t, net, "fog1/d01-s01", srcDir)
			for typ, target := range routes {
				src.SetRoute(typ, target)
			}
		case k < 11: // crash + recover the target
			dst = newMigrateNode(t, net, "fog1/d01-s02", dstDir)
		default: // checkpoint a random side
			n := src
			if rng.Intn(2) == 1 {
				n = dst
			}
			if err := n.Checkpoint(); err != nil {
				failf("op %d checkpoint: %v", op, err)
			}
		}
	}

	// Heal everything and drain both siblings.
	net.parent.set("up")
	net.setMigrate("up")
	for round := 0; round < 10 && (src.PendingBatches() > 0 || dst.PendingBatches() > 0); round++ {
		_ = src.Flush(ctx)
		_ = dst.Flush(ctx)
	}
	if src.PendingBatches() != 0 || dst.PendingBatches() != 0 {
		failf("did not drain: src=%d dst=%d delivery units",
			src.PendingBatches(), dst.PendingBatches())
	}

	// Conservation, exactly once: every accepted reading is preserved
	// exactly once at the parent, and nothing phantom appears.
	got := net.parent.counts()
	for v := range accepted {
		switch got[v] {
		case 0:
			failf("reading %v lost (accepted but never preserved)", v)
		case 1: // exactly once
		default:
			failf("reading %v preserved %d times", v, got[v])
		}
	}
	for v := range got {
		if !accepted[v] {
			failf("phantom reading %v preserved but never accepted", v)
		}
	}

	// Single ownership: after a final committed handoff and drain, the
	// source holds no delivery state for the moved type.
	if err := src.MigrateOut(ctx, "traffic", dst.ID()); err != nil {
		failf("final handoff: %v", err)
	}
	src.SetRoute("traffic", dst.ID())
	if got := len(pendingValues(src, "traffic")); got != 0 {
		failf("source still owns %d readings after committed handoff", got)
	}
	if err := dst.Flush(ctx); err != nil {
		failf("final target drain: %v", err)
	}
}

// TestMigrateJournalReplay exercises the three migration record arms
// of the journal replay directly.
func TestMigrateJournalReplay(t *testing.T) {
	// recMigrateCommit removes exactly the moved sequences and keeps
	// the counter past them.
	rs := newRecoveryState()
	for _, seq := range []uint64{100, 101, 102} {
		rs.typeState("traffic").groups = append(rs.typeState("traffic").groups,
			sealedBatch{b: typedBatch("traffic", t0, float64(seq)), seq: seq})
	}
	rec := []byte{recMigrateCommit}
	rec = wal.AppendString(rec, "traffic")
	rec = wal.AppendUvarint(rec, 2)
	rec = wal.AppendUint64(rec, 100)
	rec = wal.AppendUint64(rec, 102)
	if err := rs.applyRecord(rec); err != nil {
		t.Fatal(err)
	}
	if got := rs.types["traffic"].groups; len(got) != 1 || got[0].seq != 101 {
		t.Fatalf("after migrate commit, groups = %+v, want only seq 101", got)
	}
	if !rs.sawSeq || rs.seqCounter < 102 {
		t.Errorf("seq counter = %d (saw=%v), want >= 102", rs.seqCounter, rs.sawSeq)
	}

	// recMigrateStart leaves the groups alone but advances the counter
	// past the handoff's reserved transfer sequences.
	start := []byte{recMigrateStart}
	start = wal.AppendString(start, "traffic")
	start = wal.AppendString(start, "fog1/d01-s02")
	start = wal.AppendUint64(start, 150)
	if err := rs.applyRecord(start); err != nil {
		t.Fatal(err)
	}
	if len(rs.types["traffic"].groups) != 1 {
		t.Fatal("migrate start changed the recovered groups")
	}
	if rs.seqCounter != 150 {
		t.Fatalf("seq counter = %d, want 150 (migrate start watermark)", rs.seqCounter)
	}

	// recMigrateIn re-absorbs the chunk's entries and marks verbatim.
	b := typedBatch("traffic", t0, 7, 8)
	b.NodeID = "fog1/d01-s01"
	payload, err := (&protocol.Sealer{}).SealSeq(nil, b, aggregate.CodecNone, 55)
	if err != nil {
		t.Fatal(err)
	}
	tr := &protocol.MigrateTransfer{
		TypeName: "traffic", From: "fog1/d01-s01", To: "fog1/d01-s02", TransferSeq: 77,
		Entries: []protocol.MigrateEntry{{Seq: 55, Payload: payload}},
		Marks:   map[string][]uint64{"edge/e1": {9}},
	}
	wire, err := protocol.EncodeMigrateTransfer(tr)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte{recMigrateIn}
	in = wal.AppendBytes(in, wire)
	rs2 := newRecoveryState()
	if err := rs2.applyRecord(in); err != nil {
		t.Fatal(err)
	}
	groups := rs2.types["traffic"].groups
	if len(groups) != 1 || groups[0].seq != 55 || groups[0].b.NodeID != "fog1/d01-s01" {
		t.Fatalf("replayed absorb groups = %+v, want one foreign batch at seq 55", groups)
	}
	wantMarks := map[markEntry]bool{
		{origin: "edge/e1", seq: 9}:       false,
		{origin: "fog1/d01-s01", seq: 77}: false,
	}
	for _, m := range rs2.marks {
		if _, ok := wantMarks[m]; ok {
			wantMarks[m] = true
		}
	}
	for m, seen := range wantMarks {
		if !seen {
			t.Errorf("replayed absorb missing mark %+v", m)
		}
	}
	// Foreign sequences must not advance this node's counter.
	if rs2.sawSeq {
		t.Errorf("absorbed foreign sequences advanced the local counter to %d", rs2.seqCounter)
	}
}
