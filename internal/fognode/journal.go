package fognode

import (
	"encoding/json"
	"fmt"
	"sync"

	"f2c/internal/cq"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sensor"
	"f2c/internal/wal"
)

// The fog-node journal persists exactly the state the upward-delivery
// guarantee depends on, as one record per state transition:
//
//	recBatch   readings accepted into the per-type pending buffer;
//	           when the batch arrived sequenced over the transport,
//	           the record also carries its (origin, seq) replay-filter
//	           mark, so acceptance and dedup state commit atomically —
//	           a recovered receiver either has both the batch and its
//	           mark or neither, and a sender's retry is either
//	           recognized or re-accepted exactly once
//	recSeal    a pending buffer frozen under a delivery sequence
//	           (it becomes one retry-queue batch until committed)
//	recCommit  a sealed batch delivered and acknowledged upward
//	recShed    readings dropped oldest-first by MaxPendingReadings
//
// plus the live shard-migration records (see migrate.go):
//
//	recMigrateStart   a type's state frozen for handoff to a new
//	                  owner, with the counter after the handoff's
//	                  transfer sequences were reserved — an
//	                  uncommitted handoff keeps the moved batches in
//	                  their seal groups (recovery lands on local
//	                  ownership) but the counter must stay past the
//	                  reserved sequences the target may have marked
//	recMigrateCommit  the handoff's moved sequences acknowledged by
//	                  the new owner; replay removes them from the
//	                  seal groups (like recCommit, batched)
//	recMigrateIn      one absorbed handoff chunk, raw transfer
//	                  payload; replay re-absorbs the entries and
//	                  marks verbatim (degrade summaries stay
//	                  in-memory-only, matching the degrade tier's
//	                  crash contract)
//
// Record appends happen under the same locks as the state changes
// they describe (the pending-shard mutex), so replaying the log
// reproduces the per-type state machine transition by transition.
// Recovery ordering is snapshot first, then the log tail, then the
// retry queues and pending buffers are installed into the shards.
//
// plus the continuous-query alert plane (see alerts.go):
//
//	recSubscribe    a standing subscription registered (JSON
//	                definition) — the Subscribe acceptance gate
//	recUnsubscribe  a subscription cancelled (or handed off by a
//	                completed shard migration)
//	recAlertSeal    one alert push frozen on a shard's alert queue,
//	                raw wire payload; keyed by the push's
//	                (origin, seq) on replay, so a retry-fold's
//	                re-seal of the merged push replaces the earlier
//	                seal at its original queue position
//	recAlertCommit  a push delivered and acknowledged upward (or
//	                handed off by a completed shard migration)
//
// Record appends happen under the same locks as the state changes
// they describe. recBatch, recMigrateIn, recSubscribe and the
// inbound-absorb recAlertSeal are acceptance gates: if the record
// cannot be appended the operation fails and the sender retries. The
// other records are best-effort — losing one degrades toward
// re-delivery (which the receiver-side replay filter or the cloud's
// per-instance alert dedup absorbs) rather than loss.
const (
	// journalVersion is the snapshot layout version written by
	// checkpoints; version-1 snapshots (pre-alert-plane) still decode.
	journalVersion = 2

	recBatch  = 1
	recSeal   = 2
	recCommit = 3
	recShed   = 4

	recMigrateStart  = 5
	recMigrateCommit = 6
	recMigrateIn     = 7

	recSubscribe   = 8
	recUnsubscribe = 9
	recAlertSeal   = 10
	recAlertCommit = 11
)

// journal wraps the node's wal.Store with the record codec. Its mutex
// serializes appends and excludes them during checkpoints.
type journal struct {
	mu     sync.Mutex
	store  *wal.Store
	buf    []byte // record-encode scratch, reused under mu
	closed bool
}

func openJournal(cfg wal.Config) (*journal, error) {
	st, err := wal.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &journal{store: st}, nil
}

// appendBatch journals readings accepted into the pending buffer,
// together with the delivery mark (origin, seq) of the transport hop
// that carried them (zero when the batch arrived unsequenced — a
// local edge ingest or a v1 envelope). The batch is logged with the
// node's own identity — the shape the pending buffer holds and a
// recovered flush would send.
func (j *journal) appendBatch(nodeID string, b *model.Batch, origin string, seq uint64) error {
	up := model.Batch{
		NodeID:    nodeID,
		TypeName:  b.TypeName,
		Category:  b.Category,
		Collected: b.Collected,
		Readings:  b.Readings,
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recBatch)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, origin)
	j.buf = sensor.AppendBatch(j.buf, &up)
	return j.store.Append(j.buf)
}

func (j *journal) appendSeal(typ string, seq uint64, count int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recSeal)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendUvarint(j.buf, uint64(count))
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

func (j *journal) appendCommit(typ string, seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recCommit)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

func (j *journal) appendShed(typ string, count int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recShed)
	j.buf = wal.AppendUvarint(j.buf, uint64(count))
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

// appendMigrateStart journals a type's state leaving the shard maps
// for a handoff, carrying the sequence counter after the handoff's
// transfer sequences were reserved. Best-effort, like seals: the moved
// state is covered either way (replay keeps uncommitted batches in
// their seal groups), but the watermark keeps a recovered counter past
// the reserved transfer sequences — the target may have marked them,
// and a reused sequence would be deduped there silently.
func (j *journal) appendMigrateStart(typ, target string, seqHigh uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recMigrateStart)
	j.buf = wal.AppendString(j.buf, typ)
	j.buf = wal.AppendString(j.buf, target)
	j.buf = wal.AppendUint64(j.buf, seqHigh)
	return j.store.Append(j.buf)
}

// appendMigrateCommit journals the sequences a completed handoff
// moved off this node: the new owner acknowledged them, so recovery
// must not resurrect them here.
func (j *journal) appendMigrateCommit(typ string, seqs []uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recMigrateCommit)
	j.buf = wal.AppendString(j.buf, typ)
	j.buf = wal.AppendUvarint(j.buf, uint64(len(seqs)))
	for _, seq := range seqs {
		j.buf = wal.AppendUint64(j.buf, seq)
	}
	return j.store.Append(j.buf)
}

// appendMigrateIn journals one absorbed handoff chunk, raw transfer
// payload. Like appendBatch it is the acceptance gate: a failure
// rejects the chunk and the source keeps the state.
func (j *journal) appendMigrateIn(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recMigrateIn)
	j.buf = wal.AppendBytes(j.buf, payload)
	return j.store.Append(j.buf)
}

// appendSubscribe journals a standing subscription's registration —
// the Subscribe acceptance gate: a failure rejects the registration.
func (j *journal) appendSubscribe(sub cq.Subscription) error {
	doc, err := json.Marshal(sub)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recSubscribe)
	j.buf = wal.AppendBytes(j.buf, doc)
	return j.store.Append(j.buf)
}

func (j *journal) appendUnsubscribe(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recUnsubscribe)
	j.buf = wal.AppendString(j.buf, id)
	return j.store.Append(j.buf)
}

// appendAlertSeal journals one alert push (raw wire payload) frozen
// on a shard's alert queue. For a push absorbed from a child it is
// the acceptance gate (a failure rejects the push and the child
// retries); for this node's own fires the caller treats it as
// best-effort — a lost record degrades toward the window refiring
// after a crash, a duplicate instance the cloud's dedup absorbs.
func (j *journal) appendAlertSeal(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recAlertSeal)
	j.buf = wal.AppendBytes(j.buf, payload)
	return j.store.Append(j.buf)
}

// appendAlertCommit journals a push delivered and acknowledged
// upward (or folded into a successor, or handed off by a completed
// migration): recovery must not resurrect it.
func (j *journal) appendAlertCommit(typ, origin string, seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recAlertCommit)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, origin)
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

// checkpointDue reports whether the log has grown past the automatic
// snapshot threshold.
func (j *journal) checkpointDue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false
	}
	t := j.store.SnapshotThreshold()
	return t > 0 && j.store.AppendsSinceSnapshot() >= t
}

// checkpoint folds the node's current delivery state into a snapshot
// and rotates the log. The caller holds every pending-shard mutex and
// the flush-exclusion lock, so the encoded state is consistent and no
// record can race the rotation.
func (j *journal) checkpoint(seqCounter uint64, filter *protocol.ReplayFilter, shards []pendingShard, subs []cq.SubSnapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	data, err := encodeNodeSnapshot(nil, seqCounter, filter.Dump(), shards, subs)
	if err != nil {
		return err
	}
	return j.store.WriteSnapshot(data)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.store.Close()
}

// Snapshot layout (version 2; version 1 ends after the entries):
//
//	[version u8]
//	[seq counter u64]
//	[origins uvarint] { [origin string] [n uvarint] { [seq u64] }* }*
//	[entries uvarint] { [kind u8: 0 pending, 1 sealed] [seq u64]
//	                    [batch bytes (sensor wire, uvarint-framed)] }*
//	[subs uvarint]    { [cq.SubSnapshot JSON, uvarint-framed] }*
//	[alerts uvarint]  { [alert push wire payload, uvarint-framed] }*
//
// Entries are grouped per type — sealed batches in retry-queue order,
// then the pending buffer — and route by the embedded batch's type on
// decode; queued alert pushes likewise route by their embedded type,
// per-type queue order preserved.
const (
	snapEntryPending = 0
	snapEntrySealed  = 1
)

func encodeNodeSnapshot(dst []byte, seqCounter uint64, marks map[string][]uint64, shards []pendingShard, subs []cq.SubSnapshot) ([]byte, error) {
	dst = append(dst, journalVersion)
	dst = wal.AppendUint64(dst, seqCounter)
	dst = wal.AppendMarkSet(dst, marks)
	entries := 0
	for i := range shards {
		sh := &shards[i]
		for _, q := range sh.retry {
			entries += len(q)
		}
		entries += len(sh.pending)
	}
	dst = wal.AppendUvarint(dst, uint64(entries))
	var wire []byte
	appendEntry := func(kind byte, seq uint64, b *model.Batch) {
		dst = append(dst, kind)
		dst = wal.AppendUint64(dst, seq)
		wire = sensor.AppendBatch(wire[:0], b)
		dst = wal.AppendBytes(dst, wire)
	}
	for i := range shards {
		sh := &shards[i]
		for _, q := range sh.retry {
			for _, sb := range q {
				appendEntry(snapEntrySealed, sb.seq, sb.b)
			}
		}
		for _, b := range sh.pending {
			appendEntry(snapEntryPending, 0, b)
		}
	}
	dst = wal.AppendUvarint(dst, uint64(len(subs)))
	for i := range subs {
		doc, err := cq.EncodeSubSnapshot(&subs[i])
		if err != nil {
			return nil, err
		}
		dst = wal.AppendBytes(dst, doc)
	}
	nAlerts := 0
	for i := range shards {
		for _, q := range shards[i].alerts {
			nAlerts += len(q)
		}
	}
	dst = wal.AppendUvarint(dst, uint64(nAlerts))
	for i := range shards {
		for _, q := range shards[i].alerts {
			for k := range q {
				payload, err := protocol.EncodeAlertPush(&q[k].push)
				if err != nil {
					return nil, err
				}
				dst = wal.AppendBytes(dst, payload)
			}
		}
	}
	return dst, nil
}

// recoveryState accumulates the replayed delivery state before it is
// installed into a node.
type recoveryState struct {
	// self is the recovering node's ID: it decides which alert
	// sequences advance the counter (own pushes) and which fired
	// alerts re-mark the engine's emitted sets (own fires).
	self       string
	seqCounter uint64
	sawSeq     bool
	marks      []markEntry
	types      map[string]*typeRecovery
	// stored collects every replayed batch for the local time-series
	// store: recovery restores real-time reads over the checkpoint
	// window, not just the undelivered buffers.
	stored []*model.Batch
	// Continuous-query state. snapSubs are the checkpoint's engine
	// snapshots; subEvents the tail's subscribe/unsubscribe/handoff
	// ops in log order. observed holds only the tail's accepted
	// batches: the engine snapshot already folded everything up to
	// the checkpoint (batches still pending included), so re-observing
	// snapshot entries would double-count their readings. alertMarks
	// carries the (sub, window-start) of every alert this node's own
	// subscriptions fired, from all seal records — applied before the
	// re-observation so a sealed window cannot refire.
	snapSubs   []cq.SubSnapshot
	subEvents  []subOp
	observed   []*model.Batch
	alertMarks []alertMark
	// Queued alert pushes, keyed (origin, seq) in first-seen order: a
	// fold's re-seal of the merged push replaces the earlier seal at
	// its original position, and a commit removes the key.
	alertOrder []alertKey
	alertByKey map[alertKey]*protocol.AlertPush
}

type markEntry struct {
	origin string
	seq    uint64
}

type subOp struct {
	remove bool
	id     string
	sub    cq.Subscription
	// snap is set for a migration-absorbed subscription (definition
	// plus live window state, installed via Engine.Install).
	snap *cq.SubSnapshot
}

type alertMark struct {
	subID string
	start int64
}

type alertKey struct {
	origin string
	seq    uint64
}

type typeRecovery struct {
	groups  []sealedBatch // retry queue, seal order
	pending *model.Batch
}

func newRecoveryState() *recoveryState {
	return &recoveryState{
		types:      make(map[string]*typeRecovery),
		alertByKey: make(map[alertKey]*protocol.AlertPush),
	}
}

// addAlertPush folds one sealed alert push into the recovery state:
// counter watermark for own sequences, emitted marks for own fires,
// and the keyed queue entry (replace on re-seal, append otherwise).
func (rs *recoveryState) addAlertPush(p *protocol.AlertPush) {
	if p.Origin == rs.self {
		rs.noteSeq(p.Seq)
	}
	for i := range p.Alerts {
		if p.Alerts[i].FiredBy == rs.self {
			rs.alertMarks = append(rs.alertMarks, alertMark{subID: p.Alerts[i].SubID, start: p.Alerts[i].StartUnix})
		}
	}
	k := alertKey{origin: p.Origin, seq: p.Seq}
	if _, ok := rs.alertByKey[k]; !ok {
		rs.alertOrder = append(rs.alertOrder, k)
	}
	rs.alertByKey[k] = p
}

func (rs *recoveryState) typeState(typ string) *typeRecovery {
	tr, ok := rs.types[typ]
	if !ok {
		tr = &typeRecovery{}
		rs.types[typ] = tr
	}
	return tr
}

func (rs *recoveryState) noteSeq(seq uint64) {
	if !rs.sawSeq || seq > rs.seqCounter {
		rs.seqCounter = seq
	}
	rs.sawSeq = true
}

func decodeNodeSnapshot(data []byte, rs *recoveryState) error {
	if len(data) == 0 {
		return nil
	}
	version := data[0]
	if version == 0 || version > journalVersion {
		return fmt.Errorf("fognode: unsupported snapshot version %d", version)
	}
	rest := data[1:]
	seqCounter, rest, err := wal.ReadUint64(rest)
	if err != nil {
		return err
	}
	rs.noteSeq(seqCounter)
	rest, err = wal.ReadMarkSet(rest, func(origin string, seq uint64) {
		rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
	})
	if err != nil {
		return err
	}
	entries, rest, err := wal.ReadUvarint(rest)
	if err != nil {
		return err
	}
	for i := uint64(0); i < entries; i++ {
		if len(rest) == 0 {
			return fmt.Errorf("fognode: truncated snapshot entry")
		}
		kind := rest[0]
		rest = rest[1:]
		var seq uint64
		seq, rest, err = wal.ReadUint64(rest)
		if err != nil {
			return err
		}
		var wire []byte
		wire, rest, err = wal.ReadBytes(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(wire)
		if err != nil {
			return fmt.Errorf("fognode: snapshot batch: %w", err)
		}
		tr := rs.typeState(b.TypeName)
		switch kind {
		case snapEntrySealed:
			// Clone: rs.stored keeps b for the local-store replay, and
			// a shed replayed from the tail trims the group's readings
			// in place — that must not eat into the store's copy.
			tr.groups = append(tr.groups, sealedBatch{b: b.Clone(), seq: seq})
			rs.noteSeq(seq)
		case snapEntryPending:
			// Clone: rs.stored keeps b for the local-store replay, and
			// the pending buffer must not mutate it when later entries
			// merge in.
			if tr.pending == nil {
				tr.pending = b.Clone()
			} else {
				tr.pending.Readings = append(tr.pending.Readings, b.Readings...)
			}
		default:
			return fmt.Errorf("fognode: unknown snapshot entry kind %d", kind)
		}
		rs.stored = append(rs.stored, b)
	}
	if version >= 2 {
		nSubs, r, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		rest = r
		for i := uint64(0); i < nSubs; i++ {
			var doc []byte
			doc, rest, err = wal.ReadBytes(rest)
			if err != nil {
				return err
			}
			snap, err := cq.DecodeSubSnapshot(doc)
			if err != nil {
				return fmt.Errorf("fognode: snapshot subscription: %w", err)
			}
			rs.snapSubs = append(rs.snapSubs, *snap)
		}
		nAlerts, r2, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		rest = r2
		for i := uint64(0); i < nAlerts; i++ {
			var payload []byte
			payload, rest, err = wal.ReadBytes(rest)
			if err != nil {
				return err
			}
			p, err := protocol.DecodeAlertPush(payload)
			if err != nil {
				return fmt.Errorf("fognode: snapshot alert push: %w", err)
			}
			rs.addAlertPush(p)
		}
	}
	return nil
}

// applyRecord replays one log record onto the recovery state, the same
// transition the live path journaled.
func (rs *recoveryState) applyRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("fognode: empty journal record")
	}
	body := rec[1:]
	switch rec[0] {
	case recBatch:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		origin, rest, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(rest)
		if err != nil {
			return fmt.Errorf("fognode: journal batch: %w", err)
		}
		if seq != 0 {
			// The acceptance carried a delivery mark: restore it with
			// the batch so a recovered receiver still dedupes the
			// sender's retry.
			rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
		}
		tr := rs.typeState(b.TypeName)
		// Clone for the same reason as the snapshot pending entries:
		// the merge below must not grow the stored batch.
		if tr.pending == nil {
			tr.pending = b.Clone()
		} else {
			tr.pending.Readings = append(tr.pending.Readings, b.Readings...)
		}
		rs.stored = append(rs.stored, b)
		// Tail batches were accepted after the checkpoint's engine
		// snapshot, so the cq engine must re-observe them (snapshot
		// entries must not be — their readings are already folded).
		rs.observed = append(rs.observed, b)
	case recSeal:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		count, rest, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		rs.noteSeq(seq)
		tr := rs.typeState(typ)
		if tr.pending == nil {
			return nil // seal of an empty buffer: nothing to freeze
		}
		b := tr.pending
		// The seal covers the whole pending buffer; the journaled
		// count double-checks replay consistency and bounds the group
		// defensively if the two ever disagree.
		if n := int(count); n < len(b.Readings) {
			head := &model.Batch{
				NodeID: b.NodeID, TypeName: b.TypeName, Category: b.Category,
				Collected: b.Collected, Readings: b.Readings[:n:n],
			}
			tr.pending = &model.Batch{
				NodeID: b.NodeID, TypeName: b.TypeName, Category: b.Category,
				Collected: b.Collected, Readings: b.Readings[n:],
			}
			b = head
		} else {
			tr.pending = nil
		}
		tr.groups = append(tr.groups, sealedBatch{b: b, seq: seq})
	case recCommit:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		// The committed sequence was used by this node even if its
		// seal record was lost: keep the recovered counter past it so
		// a fresh batch can never reuse a sequence the parent already
		// marked (which would be silently deduped — loss, not re-delivery).
		rs.noteSeq(seq)
		tr := rs.typeState(typ)
		for i, g := range tr.groups {
			if g.seq == seq {
				tr.groups = append(tr.groups[:i], tr.groups[i+1:]...)
				break
			}
		}
	case recShed:
		count, rest, err := wal.ReadUvarint(body)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		rs.typeState(typ).shed(int(count))
	case recMigrateStart:
		// An uncommitted handoff keeps its batches in the seal groups
		// the preceding records rebuilt, so the recovered source still
		// owns them and drains upward — the shared parent dedupes if
		// the target also absorbed a copy. The watermark advances the
		// counter past the handoff's reserved transfer sequences: the
		// target may hold replay marks for them, and minting one again
		// would get a fresh forward silently deduped there.
		_, rest, err := wal.ReadString(body)
		if err != nil {
			return err
		}
		_, rest, err = wal.ReadString(rest)
		if err != nil {
			return err
		}
		seqHigh, _, err := wal.ReadUint64(rest)
		if err != nil {
			return err
		}
		rs.noteSeq(seqHigh)
	case recMigrateCommit:
		typ, rest, err := wal.ReadString(body)
		if err != nil {
			return err
		}
		count, rest, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		tr := rs.typeState(typ)
		for i := uint64(0); i < count; i++ {
			var seq uint64
			seq, rest, err = wal.ReadUint64(rest)
			if err != nil {
				return err
			}
			// Same contract as recCommit: the sequence was used even if
			// its seal record was lost, so keep the counter past it.
			rs.noteSeq(seq)
			for k, g := range tr.groups {
				if g.seq == seq {
					tr.groups = append(tr.groups[:k], tr.groups[k+1:]...)
					break
				}
			}
		}
	case recMigrateIn:
		payload, _, err := wal.ReadBytes(body)
		if err != nil {
			return err
		}
		t, err := protocol.DecodeMigrateTransfer(payload)
		if err != nil {
			return fmt.Errorf("fognode: journal migrate chunk: %w", err)
		}
		tr := rs.typeState(t.TypeName)
		for i := range t.Entries {
			b, _, seq, err := protocol.DecodeBatchPayloadSeq(t.Entries[i].Payload)
			if err != nil {
				return fmt.Errorf("fognode: journal migrate entry %d: %w", i, err)
			}
			// Absorbed verbatim, foreign identity preserved; the moved
			// sequences belong to the source's space, so they do not
			// advance this node's counter.
			tr.groups = append(tr.groups, sealedBatch{b: b, seq: seq})
		}
		for origin, seqs := range t.Marks {
			for _, seq := range seqs {
				rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
			}
		}
		rs.marks = append(rs.marks, markEntry{origin: t.From, seq: t.TransferSeq})
		for i := range t.Subs {
			snap, err := cq.DecodeSubSnapshot(t.Subs[i])
			if err != nil {
				return fmt.Errorf("fognode: journal migrate subscription %d: %w", i, err)
			}
			rs.subEvents = append(rs.subEvents, subOp{snap: snap})
		}
		for i := range t.Alerts {
			p, err := protocol.DecodeAlertPush(t.Alerts[i].Payload)
			if err != nil {
				return fmt.Errorf("fognode: journal migrate alert %d: %w", i, err)
			}
			rs.addAlertPush(p)
		}
		// Degrade summaries are in-memory-only (the degrade tier's
		// crash contract): a crash between absorb and push loses the
		// degraded resolution, never journaled raw data.
	case recSubscribe:
		doc, _, err := wal.ReadBytes(body)
		if err != nil {
			return err
		}
		var sub cq.Subscription
		if err := json.Unmarshal(doc, &sub); err != nil {
			return fmt.Errorf("fognode: journal subscription: %w", err)
		}
		rs.subEvents = append(rs.subEvents, subOp{sub: sub})
	case recUnsubscribe:
		id, _, err := wal.ReadString(body)
		if err != nil {
			return err
		}
		rs.subEvents = append(rs.subEvents, subOp{remove: true, id: id})
	case recAlertSeal:
		payload, _, err := wal.ReadBytes(body)
		if err != nil {
			return err
		}
		p, err := protocol.DecodeAlertPush(payload)
		if err != nil {
			return fmt.Errorf("fognode: journal alert seal: %w", err)
		}
		rs.addAlertPush(p)
	case recAlertCommit:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		origin, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		if origin == rs.self {
			// Same contract as recCommit: the sequence was used even if
			// its seal record was lost, so keep the counter past it.
			rs.noteSeq(seq)
		}
		delete(rs.alertByKey, alertKey{origin: origin, seq: seq})
	default:
		return fmt.Errorf("fognode: unknown journal record type %d", rec[0])
	}
	return nil
}

// shed mirrors boundTypeLocked: drop oldest first — retry-queue heads,
// then the pending buffer's head.
func (tr *typeRecovery) shed(drop int) {
	for drop > 0 && len(tr.groups) > 0 {
		head := tr.groups[0].b
		k := min(len(head.Readings), drop)
		head.Readings = head.Readings[k:]
		drop -= k
		if len(head.Readings) == 0 {
			tr.groups = tr.groups[1:]
		}
	}
	if drop > 0 && tr.pending != nil {
		k := min(len(tr.pending.Readings), drop)
		tr.pending.Readings = tr.pending.Readings[k:]
		if len(tr.pending.Readings) == 0 {
			tr.pending = nil
		}
	}
}

// recover rebuilds the node's delivery state from the journal opened
// at construction: snapshot, then the log tail, then installation into
// the pending shards, retry queues, sequence counter, replay filter
// and the local time-series store. Metrics are not re-counted —
// recovered state was already accounted by its first life.
func (n *Node) recover(j *journal) error {
	rs := newRecoveryState()
	rs.self = n.cfg.Spec.ID
	if err := decodeNodeSnapshot(j.store.Snapshot(), rs); err != nil {
		return err
	}
	for _, rec := range j.store.Records() {
		if err := rs.applyRecord(rec); err != nil {
			return err
		}
	}
	// Continuous-query plane: checkpointed engine state first, then
	// the tail's subscription ops, then the emitted marks of every
	// window this node is known to have fired — only then are the
	// tail's accepted batches re-observed, so a sealed window cannot
	// refire while an unsealed one (its fire lost with the crash)
	// legitimately does. Refired alerts are sealed by New once the
	// journal is attached.
	for i := range rs.snapSubs {
		if err := n.cqe.Install(rs.snapSubs[i]); err != nil {
			return err
		}
	}
	for _, op := range rs.subEvents {
		switch {
		case op.remove:
			n.cqe.Unsubscribe(op.id)
		case op.snap != nil:
			if err := n.cqe.Install(*op.snap); err != nil {
				return err
			}
		default:
			if err := n.cqe.Subscribe(op.sub); err != nil {
				return err
			}
		}
	}
	for _, m := range rs.alertMarks {
		n.cqe.MarkEmitted(m.subID, m.start)
	}
	for _, b := range rs.observed {
		if len(b.Readings) == 0 {
			continue
		}
		n.recoveredAlerts = append(n.recoveredAlerts, n.cqe.Observe(b)...)
	}
	for _, k := range rs.alertOrder {
		p, ok := rs.alertByKey[k]
		if !ok {
			continue // committed
		}
		sh := n.shardFor(p.TypeName)
		sh.alerts[p.TypeName] = append(sh.alerts[p.TypeName], sealedAlert{push: *p, seq: p.Seq})
	}
	for typ, tr := range rs.types {
		if len(tr.groups) == 0 && tr.pending == nil {
			continue
		}
		sh := n.shardFor(typ)
		if len(tr.groups) > 0 {
			sh.retry[typ] = tr.groups
		}
		if tr.pending != nil {
			sh.pending[typ] = tr.pending
		}
	}
	if rs.sawSeq {
		n.seq.Store(rs.seqCounter)
	}
	for _, m := range rs.marks {
		n.replay.Mark(m.origin, m.seq)
	}
	// A segment-backed store is self-durable: it already recovered its
	// own WAL and segments at Open, so replaying the delivery
	// journal's accepted batches into it would duplicate readings.
	if n.segStore == nil {
		for _, b := range rs.stored {
			if len(b.Readings) == 0 {
				continue
			}
			if err := n.store.Append(b); err != nil {
				return fmt.Errorf("fognode %s: recover store: %w", n.cfg.Spec.ID, err)
			}
		}
	}
	return nil
}
