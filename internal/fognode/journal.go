package fognode

import (
	"fmt"
	"sync"

	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sensor"
	"f2c/internal/wal"
)

// The fog-node journal persists exactly the state the upward-delivery
// guarantee depends on, as one record per state transition:
//
//	recBatch   readings accepted into the per-type pending buffer;
//	           when the batch arrived sequenced over the transport,
//	           the record also carries its (origin, seq) replay-filter
//	           mark, so acceptance and dedup state commit atomically —
//	           a recovered receiver either has both the batch and its
//	           mark or neither, and a sender's retry is either
//	           recognized or re-accepted exactly once
//	recSeal    a pending buffer frozen under a delivery sequence
//	           (it becomes one retry-queue batch until committed)
//	recCommit  a sealed batch delivered and acknowledged upward
//	recShed    readings dropped oldest-first by MaxPendingReadings
//
// plus the live shard-migration records (see migrate.go):
//
//	recMigrateStart   a type's state frozen for handoff to a new
//	                  owner, with the counter after the handoff's
//	                  transfer sequences were reserved — an
//	                  uncommitted handoff keeps the moved batches in
//	                  their seal groups (recovery lands on local
//	                  ownership) but the counter must stay past the
//	                  reserved sequences the target may have marked
//	recMigrateCommit  the handoff's moved sequences acknowledged by
//	                  the new owner; replay removes them from the
//	                  seal groups (like recCommit, batched)
//	recMigrateIn      one absorbed handoff chunk, raw transfer
//	                  payload; replay re-absorbs the entries and
//	                  marks verbatim (degrade summaries stay
//	                  in-memory-only, matching the degrade tier's
//	                  crash contract)
//
// Record appends happen under the same locks as the state changes
// they describe (the pending-shard mutex), so replaying the log
// reproduces the per-type state machine transition by transition.
// Recovery ordering is snapshot first, then the log tail, then the
// retry queues and pending buffers are installed into the shards.
//
// recBatch is the acceptance gate: if it cannot be appended the
// ingest fails and the sender retries. The other records are
// best-effort — losing one degrades toward re-delivery (which the
// receiver-side replay filter absorbs) rather than loss.
const (
	journalVersion = 1

	recBatch  = 1
	recSeal   = 2
	recCommit = 3
	recShed   = 4

	recMigrateStart  = 5
	recMigrateCommit = 6
	recMigrateIn     = 7
)

// journal wraps the node's wal.Store with the record codec. Its mutex
// serializes appends and excludes them during checkpoints.
type journal struct {
	mu     sync.Mutex
	store  *wal.Store
	buf    []byte // record-encode scratch, reused under mu
	closed bool
}

func openJournal(cfg wal.Config) (*journal, error) {
	st, err := wal.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &journal{store: st}, nil
}

// appendBatch journals readings accepted into the pending buffer,
// together with the delivery mark (origin, seq) of the transport hop
// that carried them (zero when the batch arrived unsequenced — a
// local edge ingest or a v1 envelope). The batch is logged with the
// node's own identity — the shape the pending buffer holds and a
// recovered flush would send.
func (j *journal) appendBatch(nodeID string, b *model.Batch, origin string, seq uint64) error {
	up := model.Batch{
		NodeID:    nodeID,
		TypeName:  b.TypeName,
		Category:  b.Category,
		Collected: b.Collected,
		Readings:  b.Readings,
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recBatch)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, origin)
	j.buf = sensor.AppendBatch(j.buf, &up)
	return j.store.Append(j.buf)
}

func (j *journal) appendSeal(typ string, seq uint64, count int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recSeal)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendUvarint(j.buf, uint64(count))
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

func (j *journal) appendCommit(typ string, seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recCommit)
	j.buf = wal.AppendUint64(j.buf, seq)
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

func (j *journal) appendShed(typ string, count int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recShed)
	j.buf = wal.AppendUvarint(j.buf, uint64(count))
	j.buf = wal.AppendString(j.buf, typ)
	return j.store.Append(j.buf)
}

// appendMigrateStart journals a type's state leaving the shard maps
// for a handoff, carrying the sequence counter after the handoff's
// transfer sequences were reserved. Best-effort, like seals: the moved
// state is covered either way (replay keeps uncommitted batches in
// their seal groups), but the watermark keeps a recovered counter past
// the reserved transfer sequences — the target may have marked them,
// and a reused sequence would be deduped there silently.
func (j *journal) appendMigrateStart(typ, target string, seqHigh uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recMigrateStart)
	j.buf = wal.AppendString(j.buf, typ)
	j.buf = wal.AppendString(j.buf, target)
	j.buf = wal.AppendUint64(j.buf, seqHigh)
	return j.store.Append(j.buf)
}

// appendMigrateCommit journals the sequences a completed handoff
// moved off this node: the new owner acknowledged them, so recovery
// must not resurrect them here.
func (j *journal) appendMigrateCommit(typ string, seqs []uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.buf = append(j.buf[:0], recMigrateCommit)
	j.buf = wal.AppendString(j.buf, typ)
	j.buf = wal.AppendUvarint(j.buf, uint64(len(seqs)))
	for _, seq := range seqs {
		j.buf = wal.AppendUint64(j.buf, seq)
	}
	return j.store.Append(j.buf)
}

// appendMigrateIn journals one absorbed handoff chunk, raw transfer
// payload. Like appendBatch it is the acceptance gate: a failure
// rejects the chunk and the source keeps the state.
func (j *journal) appendMigrateIn(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("fognode: journal closed")
	}
	j.buf = append(j.buf[:0], recMigrateIn)
	j.buf = wal.AppendBytes(j.buf, payload)
	return j.store.Append(j.buf)
}

// checkpointDue reports whether the log has grown past the automatic
// snapshot threshold.
func (j *journal) checkpointDue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false
	}
	t := j.store.SnapshotThreshold()
	return t > 0 && j.store.AppendsSinceSnapshot() >= t
}

// checkpoint folds the node's current delivery state into a snapshot
// and rotates the log. The caller holds every pending-shard mutex and
// the flush-exclusion lock, so the encoded state is consistent and no
// record can race the rotation.
func (j *journal) checkpoint(seqCounter uint64, filter *protocol.ReplayFilter, shards []pendingShard) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	data := encodeNodeSnapshot(nil, seqCounter, filter.Dump(), shards)
	return j.store.WriteSnapshot(data)
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.store.Close()
}

// Snapshot layout (version 1):
//
//	[version u8]
//	[seq counter u64]
//	[origins uvarint] { [origin string] [n uvarint] { [seq u64] }* }*
//	[entries uvarint] { [kind u8: 0 pending, 1 sealed] [seq u64]
//	                    [batch bytes (sensor wire, uvarint-framed)] }*
//
// Entries are grouped per type — sealed batches in retry-queue order,
// then the pending buffer — and route by the embedded batch's type on
// decode.
const (
	snapEntryPending = 0
	snapEntrySealed  = 1
)

func encodeNodeSnapshot(dst []byte, seqCounter uint64, marks map[string][]uint64, shards []pendingShard) []byte {
	dst = append(dst, journalVersion)
	dst = wal.AppendUint64(dst, seqCounter)
	dst = wal.AppendMarkSet(dst, marks)
	entries := 0
	for i := range shards {
		sh := &shards[i]
		for _, q := range sh.retry {
			entries += len(q)
		}
		entries += len(sh.pending)
	}
	dst = wal.AppendUvarint(dst, uint64(entries))
	var wire []byte
	appendEntry := func(kind byte, seq uint64, b *model.Batch) {
		dst = append(dst, kind)
		dst = wal.AppendUint64(dst, seq)
		wire = sensor.AppendBatch(wire[:0], b)
		dst = wal.AppendBytes(dst, wire)
	}
	for i := range shards {
		sh := &shards[i]
		for _, q := range sh.retry {
			for _, sb := range q {
				appendEntry(snapEntrySealed, sb.seq, sb.b)
			}
		}
		for _, b := range sh.pending {
			appendEntry(snapEntryPending, 0, b)
		}
	}
	return dst
}

// recoveryState accumulates the replayed delivery state before it is
// installed into a node.
type recoveryState struct {
	seqCounter uint64
	sawSeq     bool
	marks      []markEntry
	types      map[string]*typeRecovery
	// stored collects every replayed batch for the local time-series
	// store: recovery restores real-time reads over the checkpoint
	// window, not just the undelivered buffers.
	stored []*model.Batch
}

type markEntry struct {
	origin string
	seq    uint64
}

type typeRecovery struct {
	groups  []sealedBatch // retry queue, seal order
	pending *model.Batch
}

func newRecoveryState() *recoveryState {
	return &recoveryState{types: make(map[string]*typeRecovery)}
}

func (rs *recoveryState) typeState(typ string) *typeRecovery {
	tr, ok := rs.types[typ]
	if !ok {
		tr = &typeRecovery{}
		rs.types[typ] = tr
	}
	return tr
}

func (rs *recoveryState) noteSeq(seq uint64) {
	if !rs.sawSeq || seq > rs.seqCounter {
		rs.seqCounter = seq
	}
	rs.sawSeq = true
}

func decodeNodeSnapshot(data []byte, rs *recoveryState) error {
	if len(data) == 0 {
		return nil
	}
	if data[0] != journalVersion {
		return fmt.Errorf("fognode: unsupported snapshot version %d", data[0])
	}
	rest := data[1:]
	seqCounter, rest, err := wal.ReadUint64(rest)
	if err != nil {
		return err
	}
	rs.noteSeq(seqCounter)
	rest, err = wal.ReadMarkSet(rest, func(origin string, seq uint64) {
		rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
	})
	if err != nil {
		return err
	}
	entries, rest, err := wal.ReadUvarint(rest)
	if err != nil {
		return err
	}
	for i := uint64(0); i < entries; i++ {
		if len(rest) == 0 {
			return fmt.Errorf("fognode: truncated snapshot entry")
		}
		kind := rest[0]
		rest = rest[1:]
		var seq uint64
		seq, rest, err = wal.ReadUint64(rest)
		if err != nil {
			return err
		}
		var wire []byte
		wire, rest, err = wal.ReadBytes(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(wire)
		if err != nil {
			return fmt.Errorf("fognode: snapshot batch: %w", err)
		}
		tr := rs.typeState(b.TypeName)
		switch kind {
		case snapEntrySealed:
			// Clone: rs.stored keeps b for the local-store replay, and
			// a shed replayed from the tail trims the group's readings
			// in place — that must not eat into the store's copy.
			tr.groups = append(tr.groups, sealedBatch{b: b.Clone(), seq: seq})
			rs.noteSeq(seq)
		case snapEntryPending:
			// Clone: rs.stored keeps b for the local-store replay, and
			// the pending buffer must not mutate it when later entries
			// merge in.
			if tr.pending == nil {
				tr.pending = b.Clone()
			} else {
				tr.pending.Readings = append(tr.pending.Readings, b.Readings...)
			}
		default:
			return fmt.Errorf("fognode: unknown snapshot entry kind %d", kind)
		}
		rs.stored = append(rs.stored, b)
	}
	return nil
}

// applyRecord replays one log record onto the recovery state, the same
// transition the live path journaled.
func (rs *recoveryState) applyRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("fognode: empty journal record")
	}
	body := rec[1:]
	switch rec[0] {
	case recBatch:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		origin, rest, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		b, err := sensor.DecodeBatch(rest)
		if err != nil {
			return fmt.Errorf("fognode: journal batch: %w", err)
		}
		if seq != 0 {
			// The acceptance carried a delivery mark: restore it with
			// the batch so a recovered receiver still dedupes the
			// sender's retry.
			rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
		}
		tr := rs.typeState(b.TypeName)
		// Clone for the same reason as the snapshot pending entries:
		// the merge below must not grow the stored batch.
		if tr.pending == nil {
			tr.pending = b.Clone()
		} else {
			tr.pending.Readings = append(tr.pending.Readings, b.Readings...)
		}
		rs.stored = append(rs.stored, b)
	case recSeal:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		count, rest, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		rs.noteSeq(seq)
		tr := rs.typeState(typ)
		if tr.pending == nil {
			return nil // seal of an empty buffer: nothing to freeze
		}
		b := tr.pending
		// The seal covers the whole pending buffer; the journaled
		// count double-checks replay consistency and bounds the group
		// defensively if the two ever disagree.
		if n := int(count); n < len(b.Readings) {
			head := &model.Batch{
				NodeID: b.NodeID, TypeName: b.TypeName, Category: b.Category,
				Collected: b.Collected, Readings: b.Readings[:n:n],
			}
			tr.pending = &model.Batch{
				NodeID: b.NodeID, TypeName: b.TypeName, Category: b.Category,
				Collected: b.Collected, Readings: b.Readings[n:],
			}
			b = head
		} else {
			tr.pending = nil
		}
		tr.groups = append(tr.groups, sealedBatch{b: b, seq: seq})
	case recCommit:
		seq, rest, err := wal.ReadUint64(body)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		// The committed sequence was used by this node even if its
		// seal record was lost: keep the recovered counter past it so
		// a fresh batch can never reuse a sequence the parent already
		// marked (which would be silently deduped — loss, not re-delivery).
		rs.noteSeq(seq)
		tr := rs.typeState(typ)
		for i, g := range tr.groups {
			if g.seq == seq {
				tr.groups = append(tr.groups[:i], tr.groups[i+1:]...)
				break
			}
		}
	case recShed:
		count, rest, err := wal.ReadUvarint(body)
		if err != nil {
			return err
		}
		typ, _, err := wal.ReadString(rest)
		if err != nil {
			return err
		}
		rs.typeState(typ).shed(int(count))
	case recMigrateStart:
		// An uncommitted handoff keeps its batches in the seal groups
		// the preceding records rebuilt, so the recovered source still
		// owns them and drains upward — the shared parent dedupes if
		// the target also absorbed a copy. The watermark advances the
		// counter past the handoff's reserved transfer sequences: the
		// target may hold replay marks for them, and minting one again
		// would get a fresh forward silently deduped there.
		_, rest, err := wal.ReadString(body)
		if err != nil {
			return err
		}
		_, rest, err = wal.ReadString(rest)
		if err != nil {
			return err
		}
		seqHigh, _, err := wal.ReadUint64(rest)
		if err != nil {
			return err
		}
		rs.noteSeq(seqHigh)
	case recMigrateCommit:
		typ, rest, err := wal.ReadString(body)
		if err != nil {
			return err
		}
		count, rest, err := wal.ReadUvarint(rest)
		if err != nil {
			return err
		}
		tr := rs.typeState(typ)
		for i := uint64(0); i < count; i++ {
			var seq uint64
			seq, rest, err = wal.ReadUint64(rest)
			if err != nil {
				return err
			}
			// Same contract as recCommit: the sequence was used even if
			// its seal record was lost, so keep the counter past it.
			rs.noteSeq(seq)
			for k, g := range tr.groups {
				if g.seq == seq {
					tr.groups = append(tr.groups[:k], tr.groups[k+1:]...)
					break
				}
			}
		}
	case recMigrateIn:
		payload, _, err := wal.ReadBytes(body)
		if err != nil {
			return err
		}
		t, err := protocol.DecodeMigrateTransfer(payload)
		if err != nil {
			return fmt.Errorf("fognode: journal migrate chunk: %w", err)
		}
		tr := rs.typeState(t.TypeName)
		for i := range t.Entries {
			b, _, seq, err := protocol.DecodeBatchPayloadSeq(t.Entries[i].Payload)
			if err != nil {
				return fmt.Errorf("fognode: journal migrate entry %d: %w", i, err)
			}
			// Absorbed verbatim, foreign identity preserved; the moved
			// sequences belong to the source's space, so they do not
			// advance this node's counter.
			tr.groups = append(tr.groups, sealedBatch{b: b, seq: seq})
		}
		for origin, seqs := range t.Marks {
			for _, seq := range seqs {
				rs.marks = append(rs.marks, markEntry{origin: origin, seq: seq})
			}
		}
		rs.marks = append(rs.marks, markEntry{origin: t.From, seq: t.TransferSeq})
		// Degrade summaries are in-memory-only (the degrade tier's
		// crash contract): a crash between absorb and push loses the
		// degraded resolution, never journaled raw data.
	default:
		return fmt.Errorf("fognode: unknown journal record type %d", rec[0])
	}
	return nil
}

// shed mirrors boundTypeLocked: drop oldest first — retry-queue heads,
// then the pending buffer's head.
func (tr *typeRecovery) shed(drop int) {
	for drop > 0 && len(tr.groups) > 0 {
		head := tr.groups[0].b
		k := min(len(head.Readings), drop)
		head.Readings = head.Readings[k:]
		drop -= k
		if len(head.Readings) == 0 {
			tr.groups = tr.groups[1:]
		}
	}
	if drop > 0 && tr.pending != nil {
		k := min(len(tr.pending.Readings), drop)
		tr.pending.Readings = tr.pending.Readings[k:]
		if len(tr.pending.Readings) == 0 {
			tr.pending = nil
		}
	}
}

// recover rebuilds the node's delivery state from the journal opened
// at construction: snapshot, then the log tail, then installation into
// the pending shards, retry queues, sequence counter, replay filter
// and the local time-series store. Metrics are not re-counted —
// recovered state was already accounted by its first life.
func (n *Node) recover(j *journal) error {
	rs := newRecoveryState()
	if err := decodeNodeSnapshot(j.store.Snapshot(), rs); err != nil {
		return err
	}
	for _, rec := range j.store.Records() {
		if err := rs.applyRecord(rec); err != nil {
			return err
		}
	}
	for typ, tr := range rs.types {
		if len(tr.groups) == 0 && tr.pending == nil {
			continue
		}
		sh := n.shardFor(typ)
		if len(tr.groups) > 0 {
			sh.retry[typ] = tr.groups
		}
		if tr.pending != nil {
			sh.pending[typ] = tr.pending
		}
	}
	if rs.sawSeq {
		n.seq.Store(rs.seqCounter)
	}
	for _, m := range rs.marks {
		n.replay.Mark(m.origin, m.seq)
	}
	// A segment-backed store is self-durable: it already recovered its
	// own WAL and segments at Open, so replaying the delivery
	// journal's accepted batches into it would duplicate readings.
	if n.segStore == nil {
		for _, b := range rs.stored {
			if len(b.Readings) == 0 {
				continue
			}
			if err := n.store.Append(b); err != nil {
				return fmt.Errorf("fognode %s: recover store: %w", n.cfg.Spec.ID, err)
			}
		}
	}
	return nil
}
