package fognode

import (
	"context"
	"sync"
	"testing"
	"time"

	"f2c/internal/aggregate"
	"f2c/internal/metrics"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/sched"
	"f2c/internal/sim"
	"f2c/internal/topology"
	"f2c/internal/transport"
)

// TestDegradeBoundFoldsTrimmedReadings: with DegradeToSummary on, the
// MaxPendingReadings trim folds the overflow into window summaries
// (counts preserved, nothing shed) and the next flush pushes them
// upward beside the surviving raw batch.
func TestDegradeBoundFoldsTrimmedReadings(t *testing.T) {
	net := transport.NewSimNetwork()
	var mu sync.Mutex
	var batches []*model.Batch
	var pushes []protocol.SummaryPush
	net.Register("fog2/d01", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		switch msg.Kind {
		case transport.KindBatch:
			b, _, _, err := protocol.DecodeBatchPayloadSeq(msg.Payload)
			if err != nil {
				return nil, err
			}
			batches = append(batches, b)
		case transport.KindSummaryPush:
			var p protocol.SummaryPush
			if err := protocol.DecodeJSON(msg.Payload, &p); err != nil {
				return nil, err
			}
			pushes = append(pushes, p)
		}
		return []byte("ok"), nil
	}))
	n, err := New(Config{
		Spec: fog1Spec(), City: "barcelona", Clock: sim.NewVirtualClock(t0),
		Transport: net, Codec: aggregate.CodecNone,
		MaxPendingReadings: 4, DegradeToSummary: true, DegradeWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	vals := make(map[string]float64, 8)
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		vals[id] = 20
	}
	if err := n.Ingest(batchOf(vals, t0)); err != nil {
		t.Fatal(err)
	}
	if got := n.DegradedReadings(); got != 4 {
		t.Fatalf("DegradedReadings = %d, want 4 (bound 4, ingested 8)", got)
	}
	if got := n.ShedReadings(); got != 0 {
		t.Fatalf("ShedReadings = %d, want 0: degrade must replace raw shed", got)
	}

	if err := n.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0].Readings) != 4 {
		t.Fatalf("parent saw %d batches (first %d readings), want 1 batch of 4", len(batches), len(batches[0].Readings))
	}
	if len(pushes) != 1 {
		t.Fatalf("parent saw %d summary pushes, want 1", len(pushes))
	}
	p := pushes[0]
	if p.Origin != "fog1/d01-s01" || p.TypeName != "temperature" {
		t.Errorf("push origin/type = %s/%s", p.Origin, p.TypeName)
	}
	if got := p.Readings(); got != 4 {
		t.Errorf("push carries %d readings, want 4: degraded counts must be conserved", got)
	}
	if len(p.Windows) != 1 || p.Windows[0].StartUnix != t0.UnixNano() {
		t.Errorf("windows = %+v, want one starting at t0", p.Windows)
	}
	if got := n.SummariesEmitted(); got != 1 {
		t.Errorf("SummariesEmitted = %d, want 1", got)
	}
	if n.PendingBatches() != 0 {
		t.Errorf("pending after flush = %d, want 0", n.PendingBatches())
	}
}

// TestSummaryPushMergesUpward: a parent receiving a child's degraded
// windows dedups retries by (origin, seq), folds them into its own
// degrade buffer, and re-emits them upward under its own identity.
func TestSummaryPushMergesUpward(t *testing.T) {
	net := transport.NewSimNetwork()
	var mu sync.Mutex
	var pushes []protocol.SummaryPush
	net.Register("cloud", transport.HandlerFunc(func(_ context.Context, msg transport.Message) ([]byte, error) {
		if msg.Kind == transport.KindSummaryPush {
			var p protocol.SummaryPush
			if err := protocol.DecodeJSON(msg.Payload, &p); err != nil {
				return nil, err
			}
			mu.Lock()
			pushes = append(pushes, p)
			mu.Unlock()
		}
		return []byte("ok"), nil
	}))
	f2, err := New(Config{
		Spec:  topology.NodeSpec{ID: "fog2/d01", Layer: topology.LayerFog2, Parent: "cloud", Name: "Ciutat Vella"},
		City:  "barcelona",
		Clock: sim.NewVirtualClock(t0), Transport: net, Codec: aggregate.CodecNone,
		DegradeToSummary: true, DegradeWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	push := protocol.SummaryPush{
		Origin: "fog1/d01-s01", Seq: 7, TypeName: "temperature", Category: "energy",
		Windows: []protocol.SummaryWindow{{
			StartUnix: t0.UnixNano(), EndUnix: t0.Add(time.Minute).UnixNano(),
			Summary: aggregate.Summary{Count: 4, Sum: 80, Min: 18, Max: 22},
		}},
	}
	payload, err := protocol.EncodeJSON(push)
	if err != nil {
		t.Fatal(err)
	}
	msg := transport.Message{From: "fog1/d01-s01", To: "fog2/d01", Kind: transport.KindSummaryPush, Payload: payload}
	if _, err := f2.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if got := f2.DegradedInbound(); got != 4 {
		t.Fatalf("DegradedInbound = %d, want 4", got)
	}
	// A retry of the same push (ack lost) must dedup, not double-count.
	if _, err := f2.Handle(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	if got := f2.DegradedInbound(); got != 4 {
		t.Fatalf("DegradedInbound after retry = %d, want 4 (deduped)", got)
	}

	if err := f2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(pushes) != 1 {
		t.Fatalf("cloud saw %d pushes, want 1", len(pushes))
	}
	if pushes[0].Origin != "fog2/d01" {
		t.Errorf("re-emitted origin = %s, want fog2/d01 (combine-and-forward)", pushes[0].Origin)
	}
	if got := pushes[0].Readings(); got != 4 {
		t.Errorf("re-emitted readings = %d, want 4", got)
	}
}

// TestDegradeBufWindowCap: at the window cap new readings fold into
// the nearest existing window — coarser, never dropped — and pre-epoch
// instants floor onto window boundaries too.
func TestDegradeBufWindowCap(t *testing.T) {
	buf := &degradeBuf{category: model.CategoryEnergy, windows: make(map[int64]aggregate.Summary)}
	r := func(at time.Time) model.Reading {
		return model.Reading{SensorID: "a", TypeName: "temperature", Time: at, Value: 20}
	}
	buf.fold(r(t0), time.Minute, 2)
	buf.fold(r(t0.Add(time.Minute)), time.Minute, 2)
	buf.fold(r(t0.Add(5*time.Minute)), time.Minute, 2) // over the cap: nearest window absorbs it
	buf.fold(r(t0.Add(30*time.Second)), time.Minute, 2)
	if len(buf.windows) != 2 {
		t.Fatalf("windows = %d, want cap 2", len(buf.windows))
	}
	var total int64
	for _, s := range buf.windows {
		total += s.Count
	}
	if total != 4 {
		t.Fatalf("folded count = %d, want 4: the cap must coarsen, not drop", total)
	}

	pre := &degradeBuf{category: model.CategoryEnergy, windows: make(map[int64]aggregate.Summary)}
	pre.fold(r(time.Unix(-90, 0)), time.Minute, 0)
	if _, ok := pre.windows[-120*int64(time.Second)]; !ok {
		t.Fatalf("pre-epoch window keys = %v, want floor at -120s", pre.windows)
	}
}

// TestAdaptiveBatchConvergesUnderSteppedRTT drives the flush
// controller with a stepped RTT profile: a healthy link grows the
// batch to its ceiling and accelerates the cadence; stepping the RTT
// past twice the target decays both; recovering converges back.
func TestAdaptiveBatchConvergesUnderSteppedRTT(t *testing.T) {
	cfg := AdaptiveConfig{
		MinBatch: 64, MaxBatch: 1024,
		MinInterval: time.Second, MaxInterval: 8 * time.Second,
		TargetRTT: 50 * time.Millisecond, Alpha: 0.5,
	}
	c := newFlushController(cfg, 8*time.Second, nil, "")
	if got := c.batchSize(); got != (64+1024)/2 {
		t.Fatalf("initial batch = %d, want midway %d", got, (64+1024)/2)
	}

	step := func(rtt time.Duration, rounds int) {
		for i := 0; i < rounds; i++ {
			c.observeRTT(rtt)
			c.onFlushDone(0)
		}
	}
	step(10*time.Millisecond, 20)
	if got := c.batchSize(); got != 1024 {
		t.Fatalf("healthy-RTT batch = %d, want ceiling 1024", got)
	}
	if got := c.interval(); got != time.Second {
		t.Fatalf("healthy-RTT interval = %v, want floor 1s", got)
	}

	step(500*time.Millisecond, 30)
	if got := c.batchSize(); got != 64 {
		t.Fatalf("high-RTT batch = %d, want floor 64", got)
	}
	if got := c.interval(); got != 8*time.Second {
		t.Fatalf("high-RTT interval = %v, want ceiling 8s", got)
	}

	step(10*time.Millisecond, 40)
	if got := c.batchSize(); got != 1024 {
		t.Fatalf("recovered batch = %d, want ceiling 1024 again", got)
	}
}

// TestAdaptiveBackpressureHalvesBatch: a deferred send is an immediate
// multiplicative decrease, and the round's onFlushDone must not also
// grow the batch it just halved.
func TestAdaptiveBackpressureHalvesBatch(t *testing.T) {
	cfg := AdaptiveConfig{
		MinBatch: 64, MaxBatch: 1024,
		MinInterval: time.Second, MaxInterval: 8 * time.Second,
		TargetRTT: 50 * time.Millisecond, Alpha: 0.5,
	}
	c := newFlushController(cfg, 8*time.Second, nil, "")
	c.observeRTT(10 * time.Millisecond)
	c.onFlushDone(0) // 544 -> 680, interval 8s -> 6s
	before := c.batchSize()

	c.onBackpressure()
	if got := c.batchSize(); got != before/2 {
		t.Fatalf("batch after backpressure = %d, want %d", got, before/2)
	}
	if got := c.interval(); got != 8*time.Second {
		t.Fatalf("interval after backpressure = %v, want doubled+clamped 8s", got)
	}
	c.onFlushDone(0) // same round: the decrease already happened
	if got := c.batchSize(); got != before/2 {
		t.Fatalf("batch after post-backpressure flush = %d, want unchanged %d", got, before/2)
	}
}

// TestHandleAdmissionOverload: with the node's only handler slot held
// and the ingest admission queue full, the next ingest is rejected
// fast with the typed overload error senders treat as backpressure.
func TestHandleAdmissionOverload(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	net := transport.NewSimNetwork()
	net.Register("fog2/d01", transport.HandlerFunc(func(context.Context, transport.Message) ([]byte, error) {
		close(entered)
		<-gate
		return []byte("ok"), nil
	}))
	reg := metrics.NewRegistry()
	n, err := New(Config{
		Spec: fog1Spec(), City: "barcelona", Clock: sim.NewVirtualClock(t0),
		Transport: net, Codec: aggregate.CodecNone, Registry: reg,
		Scheduler: &sched.Options{
			Concurrency: 1,
			Classes: map[string]sched.ClassOptions{
				"ingest": {Weight: 1, QueueLimit: 1},
				"relay":  {Weight: 1},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single handler slot with a relay parked on the gate.
	relayDone := make(chan error, 1)
	go func() {
		_, err := n.Handle(context.Background(), transport.Message{
			From: "fog1/d01-s02", To: "fog1/d01-s01", Kind: transport.KindRelay, Payload: []byte("x"),
		})
		relayDone <- err
	}()
	<-entered

	ingest := func(origin string) error {
		b := batchOf(map[string]float64{"a": 20}, t0)
		b.NodeID = origin
		payload, err := protocol.EncodeBatchPayload(b, aggregate.CodecNone)
		if err != nil {
			t.Error(err)
			return err
		}
		_, err = n.Handle(context.Background(), transport.Message{
			From: origin, To: "fog1/d01-s01", Kind: transport.KindBatch, Payload: payload,
		})
		return err
	}
	// First ingest waits in the class queue (limit 1); the second must
	// be turned away immediately.
	results := make(chan error, 2)
	go func() { results <- ingest("edge-1") }()
	go func() { results <- ingest("edge-2") }()

	var rejected error
	select {
	case rejected = <-results:
	case <-time.After(5 * time.Second):
		t.Fatal("no fast rejection: overflow admission did not return")
	}
	if !transport.IsOverload(rejected) {
		t.Fatalf("overflow ingest error = %v, want typed overload", rejected)
	}

	close(gate)
	if err := <-relayDone; err != nil {
		t.Fatalf("relay = %v", err)
	}
	select {
	case err := <-results:
		if err != nil {
			t.Fatalf("queued ingest after release = %v, want success", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued ingest never dispatched after the slot freed")
	}
	if got := reg.Counter("fog1/d01-s01.sched.ingest.rejected").Value(); got != 1 {
		t.Errorf("sched.ingest.rejected = %d, want 1", got)
	}
}
