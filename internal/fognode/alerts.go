package fognode

// Continuous-query alert plane: standing subscriptions (internal/cq)
// evaluated incrementally in the ingest hot path, with fired alerts
// moving upward under transport.KindAlertPush through the same
// frozen-sequence retry machinery batches and degrade summaries use.
//
// Evaluation: every accepted batch is offered to the cq engine right
// after it lands in the temporal store (threshold subscriptions fire
// here); each flush first harvests the windows that closed since the
// last one (window subscriptions fire there). Fired alerts seal into
// an AlertPush under a fresh sequence from the node's shared space
// and queue on the owning shard; flush workers deliver them after the
// type's batches and summaries, parent-only (never sibling relays —
// the relay path exists to drain bulk data around a dead parent, and
// alerts must not arrive ahead of the readings that explain them).
//
// Delivery is at-least-once with two dedup tiers: the receiving
// tier's replay filter drops a retried push by its (Origin, Seq), and
// the cloud stores alerts keyed by their instance identity
// (FiredBy, SubID, StartUnix, Kind), which also absorbs re-batched
// copies when retry-queue overflow folds an old push's alerts into a
// younger push. On a durable node every seal and commit is journaled
// (recAlertSeal / recAlertCommit) so a rebooted node resumes its
// subscriptions, its queued pushes, and — critically — the emitted
// marks that stop a recovered window from firing twice.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"f2c/internal/cq"
	"f2c/internal/model"
	"f2c/internal/protocol"
	"f2c/internal/transport"
)

// sealedAlert is one alert push frozen under a delivery sequence,
// sharing the node's batch sequence space so the parent's per-origin
// replay filter dedups retried pushes exactly like batches.
type sealedAlert struct {
	push protocol.AlertPush
	seq  uint64
}

// maxAlertsPerPush bounds how many alert instances retry-queue
// folding may accumulate into one push; beyond it the oldest
// instances are dropped (and counted shed) — the alert tier's
// last-resort bound, mirroring the summary retry tier's.
const maxAlertsPerPush = 4096

// Subscribe registers a standing continuous query on this node. On a
// durable node the registration is journaled first (the acceptance
// gate), so a rebooted node still evaluates it.
func (n *Node) Subscribe(sub cq.Subscription) error {
	if err := sub.Validate(); err != nil {
		return fmt.Errorf("fognode %s: %w", n.cfg.Spec.ID, err)
	}
	if n.journal != nil {
		if err := n.journal.appendSubscribe(sub); err != nil {
			return fmt.Errorf("fognode %s: subscribe: %w", n.cfg.Spec.ID, err)
		}
	}
	return n.cqe.Subscribe(sub)
}

// Unsubscribe cancels a standing subscription.
func (n *Node) Unsubscribe(id string) bool {
	if n.journal != nil {
		_ = n.journal.appendUnsubscribe(id)
	}
	return n.cqe.Unsubscribe(id)
}

// Subscriptions lists this node's standing subscriptions.
func (n *Node) Subscriptions() []cq.Subscription { return n.cqe.Subscriptions() }

// observeAlerts offers an accepted batch to the cq engine and seals
// whatever threshold alerts it fired. The engine's lock-free empty
// fast path keeps this one atomic load on nodes without
// subscriptions.
func (n *Node) observeAlerts(b *model.Batch) {
	if alerts := n.cqe.Observe(b); len(alerts) != 0 {
		n.sealAlerts(alerts)
	}
}

// harvestAlerts closes and seals the windows that have ended by now —
// driven from the head of every flush.
func (n *Node) harvestAlerts(now time.Time) {
	if alerts := n.cqe.Harvest(now); len(alerts) != 0 {
		n.sealAlerts(alerts)
	}
}

// sealAlerts groups fired alerts by sensor type and seals one push
// per type onto the owning shard's alert queue, types in first-seen
// order.
func (n *Node) sealAlerts(alerts []cq.Alert) {
	byType := make(map[string][]cq.Alert, 1)
	var order []string
	for _, a := range alerts {
		if _, ok := byType[a.TypeName]; !ok {
			order = append(order, a.TypeName)
		}
		byType[a.TypeName] = append(byType[a.TypeName], a)
	}
	for _, typ := range order {
		n.sealAlertGroup(byType[typ])
	}
}

// sealAlertGroup freezes one type's fired alerts into a push under a
// fresh delivery sequence, journals the seal, queues it for the next
// flush, and reports it to the alert observer — the fire point of the
// exactly-once ledger. Alerts in the group share a type but may come
// from different subscriptions.
func (n *Node) sealAlertGroup(alerts []cq.Alert) {
	if len(alerts) == 0 {
		return
	}
	me := n.cfg.Spec.ID
	typ := alerts[0].TypeName
	push := protocol.AlertPush{
		Origin:   me,
		Seq:      n.seq.Add(1),
		TypeName: typ,
		Category: alerts[0].Category.String(),
		Alerts:   make([]protocol.Alert, 0, len(alerts)),
	}
	for i := range alerts {
		a := &alerts[i]
		push.Alerts = append(push.Alerts, protocol.Alert{
			SubID:     a.SubID,
			FiredBy:   me,
			Kind:      string(a.Kind),
			StartUnix: a.StartUnix,
			EndUnix:   a.EndUnix,
			Summary:   a.Summary,
			Value:     a.Value,
		})
	}
	sh := n.shardFor(typ)
	sh.mu.Lock()
	if n.journal != nil {
		// Best-effort, like batch seals: a lost record degrades toward
		// the window refiring after a crash — a duplicate instance the
		// cloud's instance dedup absorbs — never toward loss.
		if payload, err := protocol.EncodeAlertPush(&push); err == nil {
			_ = n.journal.appendAlertSeal(payload)
		}
	}
	sh.alerts[typ] = append(sh.alerts[typ], sealedAlert{push: push, seq: push.Seq})
	n.boundAlertsLocked(sh, typ)
	sh.mu.Unlock()
	n.alertsFired.Add(int64(len(push.Alerts)))
	if n.cfg.AlertObserver != nil {
		n.cfg.AlertObserver(push)
	}
}

// boundAlertsLocked caps a type's alert retry queue at MaxAlertRetry
// pushes. Overflow does not drop alerts: the oldest push's instances
// fold into its successor (each alert carries its own FiredBy
// instance identity, so re-batching under the younger push's
// sequence stays exactly-once downstream), and the fold is journaled
// as a re-seal of the merged push plus a commit of the folded one.
// Only past maxAlertsPerPush are the oldest instances finally shed.
// The caller holds the shard lock.
func (n *Node) boundAlertsLocked(sh *pendingShard, typ string) {
	max := n.cfg.MaxAlertRetry
	q := sh.alerts[typ]
	for max > 0 && len(q) > max {
		merged := make([]protocol.Alert, 0, len(q[0].push.Alerts)+len(q[1].push.Alerts))
		merged = append(merged, q[0].push.Alerts...)
		merged = append(merged, q[1].push.Alerts...)
		if over := len(merged) - maxAlertsPerPush; over > 0 {
			n.alertsShed.Add(int64(over))
			merged = merged[over:]
		}
		folded := q[0]
		q[1].push.Alerts = merged
		if n.journal != nil {
			// Re-seal the merged push under its unchanged (origin, seq)
			// — replay replaces the earlier seal — then commit the
			// folded push so recovery cannot resurrect its original.
			if payload, err := protocol.EncodeAlertPush(&q[1].push); err == nil {
				_ = n.journal.appendAlertSeal(payload)
			}
			_ = n.journal.appendAlertCommit(typ, folded.push.Origin, folded.seq)
		}
		n.alertFolds.Inc()
		q[0] = sealedAlert{}
		q = q[1:]
	}
	sh.alerts[typ] = q
}

// requeueAlerts parks unsent pushes back on their type's alert retry
// queue, sequences frozen.
func (n *Node) requeueAlerts(typ string, pushes []sealedAlert) {
	if len(pushes) == 0 {
		return
	}
	sh := n.shardFor(typ)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.alerts[typ] = append(sh.alerts[typ], pushes...)
	n.boundAlertsLocked(sh, typ)
}

// deliverAlert sends one sealed push to the parent. Like degrade
// summaries, alerts never ride sibling relays.
func (n *Node) deliverAlert(ctx context.Context, sa sealedAlert) error {
	now := n.cfg.Clock.Now()
	if !n.up.parentDue(now) {
		return errDeferred
	}
	payload, err := protocol.EncodeAlertPush(&sa.push)
	if err != nil {
		return err
	}
	msg := transport.Message{
		From:    n.cfg.Spec.ID,
		To:      n.cfg.Spec.Parent,
		Kind:    transport.KindAlertPush,
		Class:   sa.push.Category,
		Payload: payload,
	}
	start := time.Now()
	if _, err := n.cfg.Transport.Send(ctx, msg); err == nil {
		n.up.onParentSuccess()
		if n.ctl != nil {
			n.ctl.observeRTT(time.Since(start))
		}
		n.alertPushesOut.Inc()
		n.flushedBytes.Add(msg.WireSize())
		return nil
	} else if errors.Is(err, transport.ErrBackpressure) || transport.IsOverload(err) {
		if n.ctl != nil {
			n.ctl.onBackpressure()
		}
		n.deferredFlushes.Inc()
		return errDeferred
	} else {
		n.up.onParentFailure(now)
		return err
	}
}

// handleAlertPush is a fog tier's receiving half: a child's push is
// deduped by its (Origin, Seq), journaled as the acceptance gate,
// then queued VERBATIM — original identity preserved — for this
// node's own upward flush. Store-and-forward, not re-ingest: the
// cloud must see the firing node's instance identities unchanged.
func (n *Node) handleAlertPush(payload []byte) ([]byte, error) {
	push, err := protocol.DecodeAlertPush(payload)
	if err != nil {
		return nil, err
	}
	if n.replay.Seen(push.Origin, push.Seq) {
		n.dupBatches.Inc()
		return []byte("ok"), nil
	}
	sh := n.shardFor(push.TypeName)
	sh.mu.Lock()
	if n.journal != nil {
		if err := n.journal.appendAlertSeal(payload); err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("fognode %s: alert push: %w", n.cfg.Spec.ID, err)
		}
	}
	sh.alerts[push.TypeName] = append(sh.alerts[push.TypeName], sealedAlert{push: *push, seq: push.Seq})
	n.boundAlertsLocked(sh, push.TypeName)
	sh.mu.Unlock()
	n.alertsIn.Add(int64(len(push.Alerts)))
	// Mark only after the state landed: marking earlier would
	// blackhole the child's retry of a failed absorb.
	n.replay.Mark(push.Origin, push.Seq)
	return []byte("ok"), nil
}

// AlertsFired reports how many alert instances this node's
// subscriptions fired.
func (n *Node) AlertsFired() int64 { return n.alertsFired.Value() }

// AlertPushesOut reports how many alert pushes this node delivered
// upward.
func (n *Node) AlertPushesOut() int64 { return n.alertPushesOut.Value() }

// AlertsInbound reports how many alert instances arrived from below.
func (n *Node) AlertsInbound() int64 { return n.alertsIn.Value() }
